package backend

import (
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

type recordResolver struct {
	seqs  []int64
	dones []cache.Cycle
}

func (r *recordResolver) OnBranchResolved(seq int64, done cache.Cycle) {
	r.seqs = append(r.seqs, seq)
	r.dones = append(r.dones, done)
}

func newBE(t *testing.T, cfg Config, res BranchResolver) (*Backend, *cache.Hierarchy) {
	t.Helper()
	h, err := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, h, res)
	if err != nil {
		t.Fatal(err)
	}
	return b, h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.DispatchWidth = 0 },
		func(c *Config) { c.RetireWidth = -1 },
		func(c *Config) { c.ALULatency = 0 },
		func(c *Config) { c.PipelineDepth = -1 },
	}
	for i, m := range muts {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestALURetireTiming(t *testing.T) {
	cfg := DefaultConfig()
	b, _ := newBE(t, cfg, nil)
	b.Dispatch([]isa.Instr{{PC: 0x1000, Class: isa.ClassALU}}, 0)
	// done = 0 + depth(8) + 1 = 9; not retirable before.
	if n := b.Retire(8); n != 0 {
		t.Fatalf("retired %d at cycle 8", n)
	}
	if n := b.Retire(9); n != 1 {
		t.Fatalf("retired %d at cycle 9", n)
	}
	if !b.Drained() {
		t.Fatal("not drained")
	}
	st := b.Stats()
	if st.Dispatched != 1 || st.Retired != 1 || st.RetiredProgram != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInOrderRetirement(t *testing.T) {
	cfg := DefaultConfig()
	b, _ := newBE(t, cfg, nil)
	// A slow load followed by a fast ALU: the ALU cannot retire first.
	b.Dispatch([]isa.Instr{
		{PC: 0x1000, Class: isa.ClassLoad, DataAddr: 0x5000000}, // cold: DRAM
		{PC: 0x1004, Class: isa.ClassALU},
	}, 0)
	if n := b.Retire(20); n != 0 {
		t.Fatalf("retired %d before the load completed", n)
	}
	// Cold load: 8 (depth) + 5+15+40+200 = 268.
	if n := b.Retire(300); n != 2 {
		t.Fatalf("retired %d at cycle 300", n)
	}
}

func TestRetireWidthCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetireWidth = 2
	b, _ := newBE(t, cfg, nil)
	var instrs []isa.Instr
	for i := 0; i < 6; i++ {
		instrs = append(instrs, isa.Instr{PC: isa.Addr(0x1000 + i*4), Class: isa.ClassALU})
	}
	b.Dispatch(instrs, 0)
	if n := b.Retire(100); n != 2 {
		t.Fatalf("retired %d, want width cap 2", n)
	}
	if n := b.Retire(101); n != 2 {
		t.Fatalf("second cycle retired %d", n)
	}
}

func TestBranchResolution(t *testing.T) {
	res := &recordResolver{}
	cfg := DefaultConfig()
	b, _ := newBE(t, cfg, res)
	b.Dispatch([]isa.Instr{
		{PC: 0x1000, Class: isa.ClassALU},
		{PC: 0x1004, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
	}, 10)
	if len(res.seqs) != 1 || res.seqs[0] != 1 {
		t.Fatalf("resolved seqs %v, want [1]", res.seqs)
	}
	want := cache.Cycle(10) + cfg.PipelineDepth + cfg.BranchLatency
	if res.dones[0] != want {
		t.Fatalf("resolution at %d, want %d", res.dones[0], want)
	}
}

func TestSwPrefetchAccounting(t *testing.T) {
	b, _ := newBE(t, DefaultConfig(), nil)
	b.Dispatch([]isa.Instr{
		{PC: 0x1000, Class: isa.ClassSwPrefetch, Target: 0x9000},
		{PC: 0x1004, Class: isa.ClassALU},
	}, 0)
	b.Retire(100)
	st := b.Stats()
	if st.RetiredProgram != 1 || st.RetiredSwPf != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDispatchBudgetAndROBFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 4
	cfg.DispatchWidth = 6
	b, _ := newBE(t, cfg, nil)
	if got := b.DispatchBudget(); got != 4 {
		t.Fatalf("budget %d, want ROB-capped 4", got)
	}
	var instrs []isa.Instr
	for i := 0; i < 4; i++ {
		instrs = append(instrs, isa.Instr{PC: isa.Addr(i * 4), Class: isa.ClassALU})
	}
	b.Dispatch(instrs, 0)
	if got := b.DispatchBudget(); got != 0 {
		t.Fatalf("budget %d on full ROB", got)
	}
	if b.Stats().ROBFullCycles != 1 {
		t.Fatalf("ROBFullCycles = %d", b.Stats().ROBFullCycles)
	}
}

func TestDispatchOverflowPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 1
	b, _ := newBE(t, cfg, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overflow")
		}
	}()
	b.Dispatch([]isa.Instr{{Class: isa.ClassALU}, {Class: isa.ClassALU}}, 0)
}

func TestLoadsAndStoresTouchHierarchy(t *testing.T) {
	b, h := newBE(t, DefaultConfig(), nil)
	b.Dispatch([]isa.Instr{
		{PC: 0x1000, Class: isa.ClassLoad, DataAddr: 0x100000},
		{PC: 0x1004, Class: isa.ClassStore, DataAddr: 0x200000},
	}, 0)
	st := h.L1D.Stats()
	if st.Accesses != 2 {
		t.Fatalf("L1D accesses = %d", st.Accesses)
	}
	bst := b.Stats()
	if bst.LoadInstrs != 1 || bst.StoreInstrs != 1 {
		t.Fatalf("stats %+v", bst)
	}
}

func TestStoreDoesNotStallRetire(t *testing.T) {
	cfg := DefaultConfig()
	b, _ := newBE(t, cfg, nil)
	b.Dispatch([]isa.Instr{{PC: 0x1000, Class: isa.ClassStore, DataAddr: 0x5000000}}, 0)
	// Store retires at depth+1 despite the cold line.
	if n := b.Retire(cfg.PipelineDepth + cfg.StoreLatency); n != 1 {
		t.Fatalf("store did not retire promptly: %d", n)
	}
}

func TestMulLatency(t *testing.T) {
	cfg := DefaultConfig()
	b, _ := newBE(t, cfg, nil)
	b.Dispatch([]isa.Instr{{PC: 0x1000, Class: isa.ClassMul}}, 0)
	early := cfg.PipelineDepth + cfg.MulLatency - 1
	if n := b.Retire(early); n != 0 {
		t.Fatal("mul retired early")
	}
	if n := b.Retire(early + 1); n != 1 {
		t.Fatal("mul did not retire on time")
	}
}

func TestResetStats(t *testing.T) {
	b, _ := newBE(t, DefaultConfig(), nil)
	b.Dispatch([]isa.Instr{{Class: isa.ClassALU}}, 0)
	b.Retire(100)
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
}
