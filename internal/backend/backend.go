// Package backend models a simplified out-of-order core back-end: a decode
// queue feeding a reorder buffer, per-class execution latencies with loads
// and stores going through the data hierarchy, and in-order retirement.
// The model is deliberately coarse — the paper's phenomena live in the
// front-end — but it provides the two couplings that matter: branch
// resolution times (which gate wrong-path fill recovery) and retirement
// throughput (IPC).
package backend

import (
	"fmt"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// Config parameterizes the back-end.
type Config struct {
	// ROBSize bounds in-flight instructions.
	ROBSize int
	// DispatchWidth is instructions accepted from decode per cycle.
	DispatchWidth int
	// RetireWidth is instructions retired per cycle.
	RetireWidth int
	// PipelineDepth is the decode-to-execute latency in cycles.
	PipelineDepth cache.Cycle
	// ALULatency, MulLatency, BranchLatency, StoreLatency are execution
	// latencies; loads use the data hierarchy.
	ALULatency    cache.Cycle
	MulLatency    cache.Cycle
	BranchLatency cache.Cycle
	StoreLatency  cache.Cycle
}

// DefaultConfig mirrors a Sunny-Cove-class back-end.
func DefaultConfig() Config {
	return Config{
		ROBSize:       352,
		DispatchWidth: 6,
		RetireWidth:   6,
		PipelineDepth: 8,
		ALULatency:    1,
		MulLatency:    4,
		BranchLatency: 1,
		StoreLatency:  1,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.ROBSize <= 0 || c.DispatchWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("backend: non-positive width/size %+v", c)
	}
	if c.PipelineDepth < 0 || c.ALULatency <= 0 || c.MulLatency <= 0 || c.BranchLatency <= 0 || c.StoreLatency <= 0 {
		return fmt.Errorf("backend: invalid latency %+v", c)
	}
	return nil
}

// BranchResolver receives execution-complete notifications for branches,
// keyed by the front-end fill sequence number.
type BranchResolver interface {
	OnBranchResolved(seq int64, done cache.Cycle)
}

// Stats counts back-end activity.
type Stats struct {
	Dispatched int64
	Retired    int64
	// RetiredProgram excludes software prefetch instructions, matching the
	// paper's IPC accounting ("we do not include the additional
	// instructions AsmDB inserts when calculating its IPC").
	RetiredProgram int64
	RetiredSwPf    int64
	LoadInstrs     int64
	StoreInstrs    int64
	// ROBFullCycles: cycles dispatch was refused for lack of ROB space.
	ROBFullCycles int64
}

type robEntry struct {
	seq  int64
	done cache.Cycle
	swpf bool
}

// Backend is the simplified OoO core.
type Backend struct {
	cfg      Config
	mem      *cache.Hierarchy
	resolver BranchResolver

	rob  []robEntry // ring
	head int
	size int

	seq   int64 // next dispatch sequence (must match front-end fill order)
	stats Stats
}

// New builds a back-end executing memory operations against mem and
// reporting branch resolutions to resolver (which may be nil).
func New(cfg Config, mem *cache.Hierarchy, resolver BranchResolver) (*Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Backend{
		cfg:      cfg,
		mem:      mem,
		resolver: resolver,
		rob:      make([]robEntry, cfg.ROBSize),
	}, nil
}

// Stats returns a snapshot of counters.
func (b *Backend) Stats() Stats { return b.stats }

// RetiredProgramCount returns the retired program-instruction counter
// without copying the whole Stats snapshot; the run loop reads it every
// cycle for the warmup and budget checks.
func (b *Backend) RetiredProgramCount() int64 { return b.stats.RetiredProgram }

// ResetStats clears counters (warmup boundary); in-flight state persists.
func (b *Backend) ResetStats() { b.stats = Stats{} }

// Free returns available ROB slots.
func (b *Backend) Free() int { return b.cfg.ROBSize - b.size }

// DispatchBudget returns how many instructions may be dispatched this
// cycle (the min of the dispatch width and ROB space).
func (b *Backend) DispatchBudget() int {
	budget := b.cfg.DispatchWidth
	if free := b.Free(); free < budget {
		budget = free
		if free == 0 {
			b.stats.ROBFullCycles++
		}
	}
	return budget
}

// Dispatch accepts decoded instructions at cycle now. The caller must not
// exceed DispatchBudget. Each instruction's completion time is computed on
// entry (a coarse dataflow approximation: independent execution at full
// memory-level parallelism), and branches report their resolution.
func (b *Backend) Dispatch(instrs []isa.Instr, now cache.Cycle) {
	if len(instrs) > b.Free() {
		panic("backend: dispatch overflow")
	}
	for _, in := range instrs {
		execAt := now + b.cfg.PipelineDepth
		var done cache.Cycle
		switch {
		case in.Class == isa.ClassLoad:
			b.stats.LoadInstrs++
			done = b.mem.Load(in.DataAddr, execAt)
		case in.Class == isa.ClassStore:
			b.stats.StoreInstrs++
			// Stores retire without waiting for the hierarchy (committed
			// through a store buffer); timing charges the pipeline only,
			// but the access still perturbs the caches.
			b.mem.Store(in.DataAddr, execAt)
			done = execAt + b.cfg.StoreLatency
		case in.Class == isa.ClassMul:
			done = execAt + b.cfg.MulLatency
		case in.Class.IsBranch():
			done = execAt + b.cfg.BranchLatency
			if b.resolver != nil {
				b.resolver.OnBranchResolved(b.seq, done)
			}
		default:
			done = execAt + b.cfg.ALULatency
		}
		slot := b.head + b.size
		if slot >= len(b.rob) {
			slot -= len(b.rob)
		}
		e := &b.rob[slot]
		*e = robEntry{seq: b.seq, done: done, swpf: in.Class == isa.ClassSwPrefetch}
		b.size++
		b.seq++
		b.stats.Dispatched++
	}
}

// NextRetireAt returns the completion cycle of the oldest in-flight
// instruction — the earliest future cycle Retire can make progress — and
// ok=false when the ROB is empty. Completion times are fixed at dispatch,
// so between dispatches this is a constant the fast-forward scheduler can
// skip toward.
func (b *Backend) NextRetireAt() (cache.Cycle, bool) {
	if b.size == 0 {
		return 0, false
	}
	return b.rob[b.head].done, true
}

// ROBFull reports a full reorder buffer without DispatchBudget's
// ROBFullCycles side effect; the fast-forward scheduler probes it when
// deciding whether a ready FTQ head could actually dispatch.
func (b *Backend) ROBFull() bool { return b.size == b.cfg.ROBSize }

// SkipCycles bulk-accounts n elided cycles during which no dispatch or
// retirement occurred (the fast-forward path's skipped span). The only
// per-cycle counter the back-end owns is ROBFullCycles, incremented once
// per DispatchBudget call when the ROB is full; a skipped span has frozen
// occupancy, so the increment either applies to every elided cycle or to
// none.
func (b *Backend) SkipCycles(n int64) {
	if b.size == b.cfg.ROBSize {
		b.stats.ROBFullCycles += n
	}
}

// Retire commits up to RetireWidth completed instructions in order at
// cycle now and returns the count retired.
func (b *Backend) Retire(now cache.Cycle) int {
	n := 0
	for n < b.cfg.RetireWidth && b.size > 0 {
		e := &b.rob[b.head]
		if e.done > now {
			break
		}
		b.head++
		if b.head == len(b.rob) {
			b.head = 0
		}
		b.size--
		b.stats.Retired++
		if e.swpf {
			b.stats.RetiredSwPf++
		} else {
			b.stats.RetiredProgram++
		}
		n++
	}
	return n
}

// Drained reports an empty ROB.
func (b *Backend) Drained() bool { return b.size == 0 }
