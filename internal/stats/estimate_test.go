package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestEstimateMeanVariance(t *testing.T) {
	var e Estimate
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		e.Add(x)
	}
	if e.N != 8 {
		t.Fatalf("N = %d", e.N)
	}
	if math.Abs(e.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", e.Mean)
	}
	// Sum of squared deviations is 32; unbiased variance 32/7.
	if got, want := e.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	wantSE := math.Sqrt(32.0 / 7.0 / 8.0)
	if got := e.StdErr(); math.Abs(got-wantSE) > 1e-12 {
		t.Fatalf("StdErr = %v, want %v", got, wantSE)
	}
	// 7 degrees of freedom: t = 2.365.
	if got, want := e.CI95(), 2.365*wantSE; math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if !e.Contains(5) || !e.Contains(5+e.CI95()) || e.Contains(5+e.CI95()+1e-9) {
		t.Fatal("Contains boundary behaviour wrong")
	}
}

func TestEstimateDegenerate(t *testing.T) {
	var e Estimate
	if e.Variance() != 0 || e.StdErr() != 0 || e.CI95() != 0 {
		t.Fatal("empty estimate must report zero spread")
	}
	e.Add(3)
	if e.Mean != 3 || e.Variance() != 0 || e.CI95() != 0 {
		t.Fatalf("single-sample estimate: %+v", e)
	}
	if !e.Contains(3) || e.Contains(3.0001) {
		t.Fatal("single-sample interval must be the point itself")
	}
	if e.RelCI95() != 0 {
		t.Fatal("RelCI95 with zero CI must be 0")
	}
}

// TestEstimateConstantSamples: identical samples give zero variance, so the
// interval collapses to the point and always contains the true value.
func TestEstimateConstantSamples(t *testing.T) {
	var e Estimate
	for i := 0; i < 50; i++ {
		e.Add(1.25)
	}
	if e.Mean != 1.25 || e.CI95() != 0 {
		t.Fatalf("constant samples: mean=%v ci=%v", e.Mean, e.CI95())
	}
	if !e.Contains(1.25) {
		t.Fatal("interval must contain the constant")
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := int64(1); df <= 200; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t quantile rose at df=%d: %v > %v", df, q, prev)
		}
		if q < 1.960 {
			t.Fatalf("t quantile below the normal limit at df=%d: %v", df, q)
		}
		prev = q
	}
}

// TestEstimateJSONRoundTrip pins the canonical-serialization property the
// run cache depends on: encode/decode reproduces the exact struct.
func TestEstimateJSONRoundTrip(t *testing.T) {
	var e Estimate
	for _, x := range []float64{0.31, 0.37, 0.29, 0.41} {
		e.Add(x)
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Estimate
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip changed the estimate: %+v != %+v", got, e)
	}
}

func TestRelCI95(t *testing.T) {
	e := Estimate{N: 9, Mean: 4.0, M2: 0.5}
	if got, want := e.RelCI95(), e.CI95()/4.0; got != want {
		t.Errorf("RelCI95 = %v, want %v", got, want)
	}
	zero := Estimate{N: 9, Mean: 0, M2: 0.5}
	if got := zero.RelCI95(); got != 0 {
		t.Errorf("RelCI95 with zero mean = %v, want 0", got)
	}
}
