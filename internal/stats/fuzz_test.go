package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes the fuzzer's byte soup into float64s, keeping
// every bit pattern — including NaNs, infinities, and denormals — so the
// numeric utilities see genuinely hostile inputs.
func floatsFromBytes(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}

// FuzzGeomean checks the documented contract under arbitrary inputs: the
// result is never NaN or negative, an input with no usable values yields
// 0, and all-equal positive inputs yield that value.
func FuzzGeomean(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustBytes(1.0, 2.0, 4.0))
	f.Add(mustBytes(math.NaN(), 1.5))
	f.Add(mustBytes(math.Inf(1), 1e-300, -3))
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := floatsFromBytes(data)
		g := Geomean(xs)
		if math.IsNaN(g) {
			t.Fatalf("Geomean(%v) = NaN", xs)
		}
		if g < 0 {
			t.Fatalf("Geomean(%v) = %v < 0", xs, g)
		}
		usable := 0
		for _, x := range xs {
			if x > 0 && !math.IsNaN(x) {
				usable++
			}
		}
		if usable == 0 && g != 0 {
			t.Fatalf("Geomean(%v) = %v with no usable values", xs, g)
		}
	})
}

// FuzzPercentile checks that Percentile never panics and never returns
// NaN: NaN elements are dropped before ranking, so the result is always a
// non-NaN element of the input (nearest-rank percentiles are order
// statistics, not interpolations), or 0 when no usable element remains.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{}, 50.0)
	f.Add(mustBytes(3, 1, 2), 0.0)
	f.Add(mustBytes(3, 1, 2), 100.0)
	f.Add(mustBytes(1), math.NaN())
	f.Add(mustBytes(5, 9), 1e308)
	f.Add(mustBytes(5, 9), -1e308)
	f.Add(mustBytes(math.NaN(), 1, 2, 3), 50.0)
	f.Add(mustBytes(math.NaN(), math.NaN()), 50.0)
	f.Add(mustBytes(math.Inf(1), math.NaN(), math.Inf(-1), 0), 75.0)
	f.Add(mustBytes(math.NaN(), math.Inf(1)), 100.0)
	f.Fuzz(func(t *testing.T, data []byte, p float64) {
		xs := floatsFromBytes(data)
		v := Percentile(xs, p)
		if math.IsNaN(v) {
			t.Fatalf("Percentile(%v, %v) = NaN", xs, p)
		}
		usable := 0
		for _, x := range xs {
			if !math.IsNaN(x) {
				usable++
			}
		}
		if usable == 0 || math.IsNaN(p) {
			if v != 0 {
				t.Fatalf("Percentile(%v, %v) = %v, want 0", xs, p, v)
			}
			return
		}
		for _, x := range xs {
			if x == v {
				return
			}
		}
		t.Fatalf("Percentile(%v, %v) = %v is not an input element", xs, p, v)
	})
}

// FuzzMeanMinMax pins the package-wide NaN contract on the remaining
// aggregates: NaN inputs are dropped (one NaN sample must not poison a
// suite rollup), no-usable-input yields 0, and Min/Max always return an
// element of the input. Mean may legitimately be NaN only when the usable
// subset mixes +Inf and -Inf.
func FuzzMeanMinMax(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustBytes(1, 2, 3))
	f.Add(mustBytes(math.NaN(), 4, 8))
	f.Add(mustBytes(math.NaN(), math.NaN()))
	f.Add(mustBytes(math.Inf(1), math.NaN(), math.Inf(-1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := floatsFromBytes(data)
		mean, lo, hi := Mean(xs), Min(xs), Max(xs)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Fatalf("Min/Max(%v) = %v/%v", xs, lo, hi)
		}
		usable := 0
		posInf, negInf := false, false
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			usable++
			posInf = posInf || math.IsInf(x, 1)
			negInf = negInf || math.IsInf(x, -1)
		}
		if usable == 0 {
			if mean != 0 || lo != 0 || hi != 0 {
				t.Fatalf("no usable values but Mean/Min/Max = %v/%v/%v", mean, lo, hi)
			}
			return
		}
		if math.IsNaN(mean) && !(posInf && negInf) {
			t.Fatalf("Mean(%v) = NaN without opposing infinities", xs)
		}
		if lo > hi {
			t.Fatalf("Min %v > Max %v", lo, hi)
		}
		found := func(v float64) bool {
			for _, x := range xs {
				if x == v {
					return true
				}
			}
			return false
		}
		if !found(lo) || !found(hi) {
			t.Fatalf("Min/Max(%v) = %v/%v not input elements", xs, lo, hi)
		}
	})
}

func mustBytes(xs ...float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}
