package stats

import "math"

// Estimate is an online mean/variance accumulator (Welford's algorithm)
// over independent samples, reporting a Student-t 95% confidence interval
// on the mean. The sampled-simulation mode (SMARTS-style systematic
// sampling, internal/core) feeds it one IPC sample per detailed window and
// reports the interval next to the point estimate.
//
// The struct is plain data and serializes canonically: N, Mean and M2
// fully determine every derived quantity, so snapshots round-trip through
// JSON bit-exactly (Welford keeps M2 as an exact running sum, not a
// catastrophic difference of squares).
type Estimate struct {
	// N is the number of samples accumulated.
	N int64
	// Mean is the running sample mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add accumulates one sample.
func (e *Estimate) Add(x float64) {
	e.N++
	d := x - e.Mean
	e.Mean += d / float64(e.N)
	e.M2 += d * (x - e.Mean)
}

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (e *Estimate) Variance() float64 {
	if e.N < 2 {
		return 0
	}
	return e.M2 / float64(e.N-1)
}

// StdErr returns the standard error of the mean (0 with fewer than two
// samples).
func (e *Estimate) StdErr() float64 {
	if e.N < 2 {
		return 0
	}
	return math.Sqrt(e.Variance() / float64(e.N))
}

// CI95 returns the half-width of the 95% confidence interval on the mean,
// using the Student-t quantile for the sample's degrees of freedom. It is
// 0 with fewer than two samples — one window proves nothing about
// variance, and callers treat a zero half-width as "no interval" rather
// than "perfect estimate".
func (e *Estimate) CI95() float64 {
	if e.N < 2 {
		return 0
	}
	return tQuantile975(e.N-1) * e.StdErr()
}

// RelCI95 returns CI95 as a fraction of the mean (0 when the mean is 0).
func (e *Estimate) RelCI95() float64 {
	if e.Mean == 0 { //lint:allow exact-zero guard before division; any nonzero mean, however small, must divide
		return 0
	}
	return e.CI95() / math.Abs(e.Mean)
}

// Contains reports whether x lies inside the 95% confidence interval
// [Mean-CI95, Mean+CI95]. With fewer than two samples the interval is the
// point Mean itself.
func (e *Estimate) Contains(x float64) bool {
	return math.Abs(x-e.Mean) <= e.CI95()
}

// tTable holds the two-sided 95% (one-sided 97.5%) Student-t quantiles
// for 1..30 degrees of freedom; beyond that the distribution is close
// enough to normal that a few coarse steps suffice.
var tTable = [31]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tQuantile975 returns the 97.5th-percentile Student-t quantile for df
// degrees of freedom, conservative (rounding toward the wider interval)
// between tabulated points.
func tQuantile975(df int64) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= 30:
		return tTable[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
