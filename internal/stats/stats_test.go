package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if !almost(Geomean([]float64{4}), 4) {
		t.Fatal("single")
	}
	if !almost(Geomean([]float64{1, 4}), 2) {
		t.Fatalf("got %v", Geomean([]float64{1, 4}))
	}
	// Non-positive values are skipped, not zeroing the result.
	if !almost(Geomean([]float64{0, 2, 8, -1}), 4) {
		t.Fatalf("got %v", Geomean([]float64{0, 2, 8, -1}))
	}
	if Geomean([]float64{0, -3}) != 0 {
		t.Fatal("all-non-positive should be 0")
	}
}

func TestGeomeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)*(1-1e-9) && g <= Max(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("mean/min/max = %v %v %v", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 10 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 90) != 9 {
		t.Fatalf("p90 = %v", Percentile(xs, 90))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

// TestPercentileNaNElements pins the fix for NaN samples in xs: a NaN is
// dropped before ranking instead of landing at an unspecified position in
// the sorted order and shifting the rank lookup. Fails on the pre-fix
// code (which returned NaN or the wrong order statistic).
func TestPercentileNaNElements(t *testing.T) {
	if got := Percentile([]float64{math.NaN(), 1, 2, 3}, 50); got != 2 {
		t.Fatalf("p50 of {NaN,1,2,3} = %v, want 2 (NaN dropped)", got)
	}
	if got := Percentile([]float64{3, math.NaN(), 1, math.NaN(), 2}, 100); got != 3 {
		t.Fatalf("p100 with interleaved NaNs = %v, want 3", got)
	}
	if got := Percentile([]float64{math.NaN(), math.NaN()}, 50); got != 0 {
		t.Fatalf("all-NaN input = %v, want 0", got)
	}
	// Infinities are legitimate order statistics and must survive.
	if got := Percentile([]float64{math.Inf(1), math.NaN(), 1}, 100); !math.IsInf(got, 1) {
		t.Fatalf("p100 with +Inf element = %v, want +Inf", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: every row's second column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	if idx < 0 || !strings.HasPrefix(lines[3][idx:], "1") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableAddRowPanicsOnTooManyCells(t *testing.T) {
	tab := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab.AddRow("1", "2")
}

func TestTableShortRowPads(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only")
	if len(tab.Rows[0]) != 2 {
		t.Fatal("short row not padded")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := NewTable("ignored", "name", "note")
	tab.AddRow("x", "plain")
	tab.AddRow("y", `has,comma and "quote"`)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,note\nx,plain\ny,\"has,comma and \"\"quote\"\"\"\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}

// TestMeanMinMaxDropNaN pins the uniform NaN contract: like Geomean and
// Percentile, the aggregates drop NaN samples instead of propagating them,
// and an all-NaN input degenerates to 0. Before the fix a single NaN
// poisoned all three.
func TestMeanMinMaxDropNaN(t *testing.T) {
	xs := []float64{math.NaN(), 1, 3}
	if got := Mean(xs); got != 2 {
		t.Fatalf("Mean with NaN = %v, want 2", got)
	}
	if got := Min(xs); got != 1 {
		t.Fatalf("Min with NaN = %v, want 1", got)
	}
	if got := Max(xs); got != 3 {
		t.Fatalf("Max with NaN = %v, want 3", got)
	}
	bad := []float64{math.NaN(), math.NaN()}
	if Mean(bad) != 0 || Min(bad) != 0 || Max(bad) != 0 {
		t.Fatalf("all-NaN input: %v %v %v", Mean(bad), Min(bad), Max(bad))
	}
}
