// Package stats provides the small numeric and presentation utilities the
// experiment harness uses: geometric means, aligned text tables and CSV
// output for every figure the paper reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive and NaN
// values (a geomean over speedups must not be dragged to zero — or to NaN
// — by a degenerate sample). It returns 0 for an input with no usable
// values.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, dropping NaN values like Geomean and
// Percentile do — a single NaN sample must not poison a suite-wide rollup.
// It returns 0 for an input with no usable values.
func Mean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Min returns the smallest non-NaN value (0 when no usable value exists),
// matching the package-wide NaN treatment.
func Min(xs []float64) float64 {
	m, ok := math.NaN(), false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if !ok || x < m {
			m, ok = x, true
		}
	}
	if !ok {
		return 0
	}
	return m
}

// Max returns the largest non-NaN value (0 when no usable value exists),
// matching the package-wide NaN treatment.
func Max(xs []float64) float64 {
	m, ok := math.NaN(), false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if !ok || x > m {
			m, ok = x, true
		}
	}
	if !ok {
		return 0
	}
	return m
}

// Percentile returns the p-th percentile (0<=p<=100) by nearest-rank on a
// sorted copy; 0 for empty input or NaN p. NaN elements are dropped before
// ranking (sort.Float64s leaves NaNs at unspecified positions, so a single
// NaN would otherwise corrupt the rank lookup); all-NaN input returns 0,
// matching Geomean's treatment of degenerate samples. Out-of-range p clamps
// to the extrema, and the computed rank is clamped to the slice bounds so
// no float-rounding edge (e.g. huge inputs where int(Ceil(...)) overflows)
// can index out of range.
func Percentile(xs []float64, p float64) float64 {
	if math.IsNaN(p) {
		return 0
	}
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each value with the matching verb
// ("%s"-style formatting per cell via fmt.Sprint for non-strings).
func (t *Table) AddRowf(cells ...interface{}) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			s[i] = v
		case float64:
			s[i] = fmt.Sprintf("%.3f", v)
		default:
			s[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(s...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// RenderCSV writes the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
