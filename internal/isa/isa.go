// Package isa defines the instruction model shared by the trace format, the
// synthetic program generator and the simulator. It deliberately mirrors the
// level of abstraction ChampSim traces use: an instruction is a PC, a size,
// a class, and (for branches) a taken flag and target; (for memory ops) a
// data address. The paper's machine fetches 32-bit fixed-size instructions
// ("192, 32-bit instructions" for the 24-entry FTQ), so the default size is
// four bytes.
package isa

import "fmt"

// InstrSize is the fixed instruction size in bytes. The paper's front-end
// discussion assumes 32-bit instructions (8 per FTQ basic-block entry,
// 16 per 64-byte cache line).
const InstrSize = 4

// LineSize is the cache line size in bytes used throughout the hierarchy.
const LineSize = 64

// Addr is a virtual address.
type Addr uint64

// Line returns the cache-line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// LineIndex returns the cache line number (address / LineSize).
func (a Addr) LineIndex() uint64 { return uint64(a) / LineSize }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Class enumerates the instruction kinds the simulator distinguishes.
type Class uint8

const (
	// ClassALU covers simple integer/FP operations with short fixed latency.
	ClassALU Class = iota
	// ClassLoad reads memory through the data hierarchy.
	ClassLoad
	// ClassStore writes memory through the data hierarchy.
	ClassStore
	// ClassMul covers longer-latency arithmetic (multiply/divide class).
	ClassMul
	// ClassBranch is a conditional direct branch.
	ClassBranch
	// ClassJump is an unconditional direct jump.
	ClassJump
	// ClassCall is a direct call (pushes a return address).
	ClassCall
	// ClassReturn pops the return-address stack.
	ClassReturn
	// ClassIndirect is an indirect jump (register target).
	ClassIndirect
	// ClassIndirectCall is an indirect call.
	ClassIndirectCall
	// ClassSwPrefetch is a software instruction-prefetch: a hint carrying a
	// target code address. It flows through the front-end like any other
	// instruction; a pre-decoder fires the actual prefetch (paper §IV).
	ClassSwPrefetch
	numClasses
)

// NumClasses is the count of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	"alu", "load", "store", "mul", "branch", "jump", "call", "return",
	"indirect", "indirect-call", "sw-prefetch",
}

// String returns the lower-case mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsBranch reports whether the class redirects control flow (conditional or
// not). Software prefetches are not branches: they fall through.
func (c Class) IsBranch() bool {
	switch c {
	case ClassBranch, ClassJump, ClassCall, ClassReturn, ClassIndirect, ClassIndirectCall:
		return true
	}
	return false
}

// IsConditional reports whether the branch outcome is data-dependent.
func (c Class) IsConditional() bool { return c == ClassBranch }

// IsIndirect reports whether the target comes from a register rather than
// the instruction encoding (returns resolve through the RAS, so they are
// reported separately).
func (c Class) IsIndirect() bool {
	return c == ClassIndirect || c == ClassIndirectCall
}

// IsCall reports whether the instruction pushes a return address.
func (c Class) IsCall() bool { return c == ClassCall || c == ClassIndirectCall }

// IsMem reports whether the instruction accesses the data hierarchy.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Instr is one dynamic instruction instance.
type Instr struct {
	// PC is the instruction's virtual address.
	PC Addr
	// Class is the instruction kind.
	Class Class
	// Taken reports, for conditional branches, whether this dynamic
	// instance was taken. Unconditional control flow always has Taken set.
	Taken bool
	// Target is the next PC when control flow redirects, or the prefetch
	// target for ClassSwPrefetch. Zero for straight-line instructions.
	Target Addr
	// DataAddr is the effective address for loads and stores.
	DataAddr Addr
}

// NextPC returns the address of the instruction that follows this dynamic
// instance in program order.
func (in *Instr) NextPC() Addr {
	if in.Class.IsBranch() && in.Taken {
		return in.Target
	}
	return in.PC + InstrSize
}

// Redirects reports whether this dynamic instance changed control flow.
func (in *Instr) Redirects() bool { return in.Class.IsBranch() && in.Taken }

// String renders a compact human-readable form, useful in tests and the
// scenario example.
func (in Instr) String() string {
	switch {
	case in.Class == ClassSwPrefetch:
		return fmt.Sprintf("%v %v -> %v", in.PC, in.Class, in.Target)
	case in.Class.IsBranch():
		t := "nt"
		if in.Taken {
			t = "t"
		}
		return fmt.Sprintf("%v %v %s -> %v", in.PC, in.Class, t, in.Target)
	case in.Class.IsMem():
		return fmt.Sprintf("%v %v @%v", in.PC, in.Class, in.DataAddr)
	default:
		return fmt.Sprintf("%v %v", in.PC, in.Class)
	}
}
