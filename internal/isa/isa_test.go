package isa

import (
	"testing"
	"testing/quick"
)

func TestAddrLineAlignment(t *testing.T) {
	cases := []struct {
		in   Addr
		want Addr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{0x1234, 0x1200},
	}
	for _, c := range cases {
		if got := c.in.Line(); got != c.want {
			t.Errorf("Line(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrLineProperty(t *testing.T) {
	f := func(a uint64) bool {
		l := Addr(a).Line()
		return uint64(l)%LineSize == 0 && uint64(l) <= a && a-uint64(l) < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineIndexConsistentWithLine(t *testing.T) {
	f := func(a uint64) bool {
		return Addr(a).LineIndex() == uint64(Addr(a).Line())/LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassPredicates(t *testing.T) {
	branches := []Class{ClassBranch, ClassJump, ClassCall, ClassReturn, ClassIndirect, ClassIndirectCall}
	for _, c := range branches {
		if !c.IsBranch() {
			t.Errorf("%v should be a branch", c)
		}
	}
	nonBranches := []Class{ClassALU, ClassLoad, ClassStore, ClassMul, ClassSwPrefetch}
	for _, c := range nonBranches {
		if c.IsBranch() {
			t.Errorf("%v should not be a branch", c)
		}
	}
	if !ClassBranch.IsConditional() || ClassJump.IsConditional() {
		t.Error("conditional predicate wrong")
	}
	if !ClassIndirect.IsIndirect() || !ClassIndirectCall.IsIndirect() || ClassReturn.IsIndirect() {
		t.Error("indirect predicate wrong")
	}
	if !ClassCall.IsCall() || !ClassIndirectCall.IsCall() || ClassJump.IsCall() {
		t.Error("call predicate wrong")
	}
	if !ClassLoad.IsMem() || !ClassStore.IsMem() || ClassALU.IsMem() {
		t.Error("mem predicate wrong")
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if s := c.String(); s == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if Class(200).String() == "" {
		t.Error("out-of-range class should still render")
	}
}

func TestNextPC(t *testing.T) {
	seq := Instr{PC: 100, Class: ClassALU}
	if got := seq.NextPC(); got != 104 {
		t.Errorf("sequential NextPC = %v, want 104", got)
	}
	nt := Instr{PC: 100, Class: ClassBranch, Taken: false, Target: 200}
	if got := nt.NextPC(); got != 104 {
		t.Errorf("not-taken NextPC = %v, want 104", got)
	}
	tk := Instr{PC: 100, Class: ClassBranch, Taken: true, Target: 200}
	if got := tk.NextPC(); got != 200 {
		t.Errorf("taken NextPC = %v, want 200", got)
	}
	// A software prefetch never redirects even with a target set.
	pf := Instr{PC: 100, Class: ClassSwPrefetch, Taken: true, Target: 0x4000}
	if got := pf.NextPC(); got != 104 {
		t.Errorf("sw-prefetch NextPC = %v, want 104", got)
	}
	if pf.Redirects() {
		t.Error("sw-prefetch must not redirect")
	}
}

func TestInstrString(t *testing.T) {
	for _, in := range []Instr{
		{PC: 0x40, Class: ClassALU},
		{PC: 0x40, Class: ClassLoad, DataAddr: 0x1000},
		{PC: 0x40, Class: ClassBranch, Taken: true, Target: 0x80},
		{PC: 0x40, Class: ClassSwPrefetch, Target: 0x2000},
	} {
		if in.String() == "" {
			t.Errorf("empty String for %#v", in)
		}
	}
}
