package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

func sampleInstrs() []isa.Instr {
	return []isa.Instr{
		{PC: 0x1000, Class: isa.ClassALU},
		{PC: 0x1004, Class: isa.ClassLoad, DataAddr: 0x20000},
		{PC: 0x1008, Class: isa.ClassBranch, Taken: true, Target: 0x1100},
		{PC: 0x1100, Class: isa.ClassStore, DataAddr: 0x20040},
		{PC: 0x1104, Class: isa.ClassCall, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassSwPrefetch, Target: 0x3000},
		{PC: 0x2004, Class: isa.ClassReturn, Taken: true, Target: 0x1108},
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSlice(sampleInstrs())
	if s.Len() != 7 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("collected %d", len(got))
	}
	if _, err := s.Next(); !errors.Is(err, ErrEnd) {
		t.Fatalf("want ErrEnd, got %v", err)
	}
	s.Reset()
	in, err := s.Next()
	if err != nil || in.PC != 0x1000 {
		t.Fatalf("after Reset: %v %v", in, err)
	}
}

func TestLimit(t *testing.T) {
	l := NewLimit(NewSlice(sampleInstrs()), 3)
	got, err := Collect(l, -1)
	if err != nil || len(got) != 3 {
		t.Fatalf("got %d err %v", len(got), err)
	}
	l.Reset()
	got, err = Collect(l, -1)
	if err != nil || len(got) != 3 {
		t.Fatalf("after reset got %d err %v", len(got), err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleInstrs()
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func randInstrs(seed uint64, n int) []isa.Instr {
	r := xrand.New(seed)
	out := make([]isa.Instr, 0, n)
	pc := isa.Addr(0x400000)
	for i := 0; i < n; i++ {
		var in isa.Instr
		in.PC = pc
		switch r.Intn(6) {
		case 0:
			in.Class = isa.ClassALU
		case 1:
			in.Class = isa.ClassLoad
			in.DataAddr = isa.Addr(r.Uint64n(1 << 32))
		case 2:
			in.Class = isa.ClassStore
			in.DataAddr = isa.Addr(r.Uint64n(1 << 32))
		case 3:
			in.Class = isa.ClassBranch
			in.Taken = r.Bool(0.5)
			in.Target = isa.Addr(0x400000 + r.Uint64n(1<<20)*4)
		case 4:
			in.Class = isa.ClassJump
			in.Taken = true
			in.Target = isa.Addr(0x400000 + r.Uint64n(1<<20)*4)
		case 5:
			in.Class = isa.ClassSwPrefetch
			in.Target = isa.Addr(0x400000 + r.Uint64n(1<<20)*4)
		}
		out = append(out, in)
		pc = in.NextPC()
	}
	return out
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		want := randInstrs(seed, 500)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(r, -1)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCompact(t *testing.T) {
	// Mostly-sequential code should compress far below the naive ~25 bytes
	// per record.
	instrs := randInstrs(1, 20000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range instrs {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	perInstr := float64(buf.Len()) / float64(len(instrs))
	if perInstr > 8 {
		t.Fatalf("codec too fat: %.2f bytes/instr", perInstr)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a gzip"))); err == nil {
		t.Fatal("expected error on non-gzip input")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	raw := buf.Bytes()
	// Re-compress with corrupted magic.
	var bad bytes.Buffer
	badW, _ := NewWriter(&bad)
	_ = badW
	_ = raw
	// Simpler: gzip of wrong magic.
	var b2 bytes.Buffer
	gw := newGzip(&b2)
	gw.Write([]byte("WRONGMAG"))
	gw.Close()
	if _, err := NewReader(&b2); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	if err := w.Write(isa.Instr{}); err == nil {
		t.Fatal("expected error writing after Close")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close should be nil, got %v", err)
	}
}

func TestWriteRejectsInvalidClass(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(isa.Instr{Class: isa.Class(99)}); err == nil {
		t.Fatal("expected invalid-class error")
	}
}

func TestMeasure(t *testing.T) {
	st, err := Measure(NewSlice(sampleInstrs()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 7 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	if st.ByClass[isa.ClassALU] != 1 || st.ByClass[isa.ClassLoad] != 1 {
		t.Fatalf("class counts wrong: %v", st.ByClass)
	}
	if st.TakenBranch != 3 {
		t.Fatalf("TakenBranch = %d, want 3", st.TakenBranch)
	}
	// PCs 0x1000..0x1104 share line group 0x1000/0x1100; 0x2000/0x2004 one
	// line => lines {0x1000,0x1100,0x2000} = 3.
	if st.UniqueLines != 3 {
		t.Fatalf("UniqueLines = %d, want 3", st.UniqueLines)
	}
	if st.Footprint() != 3*isa.LineSize {
		t.Fatalf("Footprint = %d", st.Footprint())
	}
	if bf := st.BranchFraction(); bf <= 0.3 || bf >= 0.6 {
		t.Fatalf("BranchFraction = %v", bf)
	}
}

func TestCopy(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := Copy(w, NewSlice(sampleInstrs()))
	if err != nil || n != 7 {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Collect(r, -1)
	if len(got) != 7 {
		t.Fatalf("round trip through Copy lost records: %d", len(got))
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrEnd) {
		t.Fatalf("want ErrEnd on empty trace, got %v", err)
	}
}
