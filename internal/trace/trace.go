// Package trace provides the dynamic instruction stream abstraction the
// simulator consumes, plus a compact binary on-disk format so synthetic
// workloads can be generated once and replayed (the ChampSim workflow the
// paper follows). A stream may come from a serialized trace file or be
// produced on the fly by a program executor; both implement Source.
package trace

import (
	"errors"
	"io"

	"frontsim/internal/isa"
)

// ErrEnd is returned by Source.Next when the stream is exhausted.
var ErrEnd = errors.New("trace: end of stream")

// Source yields dynamic instructions in program order. Implementations are
// not required to be safe for concurrent use; every simulator instance owns
// its source.
type Source interface {
	// Next returns the next dynamic instruction, or ErrEnd.
	Next() (isa.Instr, error)
}

// Resetter is implemented by sources that can rewind to the beginning,
// allowing one workload object to drive multiple simulation runs.
type Resetter interface {
	Reset()
}

// BlockSource is an optional Source refinement for streams that can yield
// a whole fetch block per call, saving the consumer one interface call and
// one instruction copy per instruction on the simulator's hottest path.
//
// NextBlock appends the next run of instructions to buf and returns the
// extended slice. The stream must be identical to repeated Next calls, and
// the run must end exactly where an incremental consumer peeking
// instruction-by-instruction would end it:
//
//   - after a branch-class instruction (inclusive), or
//   - when len grows by max instructions, or
//   - at stream end — reported as ErrEnd together with any non-branch
//     tail, exactly when the incremental consumer's lookahead past a
//     non-branch instruction would have hit the end. A run ending in a
//     branch reports nil; the ErrEnd surfaces on the next call.
//
// Instructions within a returned run are address-contiguous. Sources with
// possible discontinuities (serialized traces, arbitrary slices) must not
// implement BlockSource; consumers fall back to Next and their own
// boundary checks.
type BlockSource interface {
	Source
	NextBlock(buf []isa.Instr, max int) ([]isa.Instr, error)
}

// AsBlockSource reports whether src can yield whole fetch blocks,
// unwrapping Limit (whose block support depends on what it wraps).
func AsBlockSource(src Source) (BlockSource, bool) {
	switch s := src.(type) {
	case *Limit:
		if _, ok := AsBlockSource(s.src); ok {
			return s, true
		}
		return nil, false
	case BlockSource:
		return s, true
	}
	return nil, false
}

// Slice is an in-memory Source over a fixed instruction sequence.
type Slice struct {
	instrs []isa.Instr
	pos    int
}

// NewSlice wraps instrs (not copied) as a Source.
func NewSlice(instrs []isa.Instr) *Slice { return &Slice{instrs: instrs} }

// Next implements Source.
func (s *Slice) Next() (isa.Instr, error) {
	if s.pos >= len(s.instrs) {
		return isa.Instr{}, ErrEnd
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, nil
}

// Reset implements Resetter.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the slice.
func (s *Slice) Len() int { return len(s.instrs) }

// Limit wraps a Source and stops after n instructions. It is used to run
// the paper's fixed-instruction-count simulations over unbounded executors.
type Limit struct {
	src  Source
	n    int64
	seen int64
}

// NewLimit returns a Source that yields at most n instructions from src.
func NewLimit(src Source, n int64) *Limit { return &Limit{src: src, n: n} }

// Next implements Source.
func (l *Limit) Next() (isa.Instr, error) {
	if l.seen >= l.n {
		return isa.Instr{}, ErrEnd
	}
	in, err := l.src.Next()
	if err != nil {
		return isa.Instr{}, err
	}
	l.seen++
	return in, nil
}

// NextBlock implements BlockSource by budget-chopping the wrapped stream.
// Callers must gate on AsBlockSource: the method is only valid when the
// wrapped source itself yields blocks.
func (l *Limit) NextBlock(buf []isa.Instr, max int) ([]isa.Instr, error) {
	if l.seen >= l.n {
		return buf, ErrEnd
	}
	m := max
	if rem := l.n - l.seen; int64(m) > rem {
		m = int(rem)
	}
	out, err := l.src.(BlockSource).NextBlock(buf, m)
	l.seen += int64(len(out) - len(buf))
	if err != nil {
		return out, err
	}
	// The budget ran out mid-block: an incremental consumer would have
	// peeked past the final non-branch instruction and seen the end now.
	// A branch-final or max-sized run ends naturally without the probe.
	if l.seen >= l.n && len(out)-len(buf) < max {
		if n := len(out); n == len(buf) || !out[n-1].Class.IsBranch() {
			return out, ErrEnd
		}
	}
	return out, nil
}

// Reset implements Resetter when the underlying source does.
func (l *Limit) Reset() {
	l.seen = 0
	if r, ok := l.src.(Resetter); ok {
		r.Reset()
	}
}

// Collect drains up to max instructions from src into a slice. max < 0
// drains everything.
func Collect(src Source, max int64) ([]isa.Instr, error) {
	var out []isa.Instr
	for max < 0 || int64(len(out)) < max {
		in, err := src.Next()
		if errors.Is(err, ErrEnd) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
	return out, nil
}

// Copy streams src into w until the source ends, returning the instruction
// count written.
func Copy(w *Writer, src Source) (int64, error) {
	var n int64
	for {
		in, err := src.Next()
		if errors.Is(err, ErrEnd) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(in); err != nil {
			return n, err
		}
		n++
	}
}

// Stats summarizes a stream's composition; used by workload tuning tests
// and the tracegen tool's report.
type Stats struct {
	Instructions int64
	ByClass      [isa.NumClasses]int64
	TakenBranch  int64
	// UniqueLines is the number of distinct instruction cache lines touched
	// (the instruction footprint in 64-byte lines).
	UniqueLines int
}

// Footprint returns the instruction footprint in bytes.
func (s *Stats) Footprint() int64 { return int64(s.UniqueLines) * isa.LineSize }

// BranchFraction returns the fraction of instructions that are branches.
func (s *Stats) BranchFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	var b int64
	for c := 0; c < isa.NumClasses; c++ {
		if isa.Class(c).IsBranch() {
			b += s.ByClass[c]
		}
	}
	return float64(b) / float64(s.Instructions)
}

// Measure consumes src and accumulates statistics.
func Measure(src Source) (Stats, error) {
	var st Stats
	lines := make(map[uint64]struct{})
	for {
		in, err := src.Next()
		if errors.Is(err, ErrEnd) {
			st.UniqueLines = len(lines)
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Instructions++
		st.ByClass[in.Class]++
		if in.Class.IsBranch() && in.Taken {
			st.TakenBranch++
		}
		lines[in.PC.LineIndex()] = struct{}{}
	}
}

// readFull is a tiny helper shared by the codec.
func readFull(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf)
	return err
}
