package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"testing"

	"frontsim/internal/isa"
)

// failWriter fails every Write, modeling a full or revoked output device.
type failWriter struct{ writes int }

var errDevice = errors.New("device gone")

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	return 0, errDevice
}

// TestWriteRejectsDataAddrOnNonMemClass pins the loud-failure contract: the
// format only carries a data address for memory classes, so a record that
// would lose its DataAddr in encoding must be rejected, not silently
// round-tripped lossily. Before the fix Write accepted it and dropped the
// field.
func TestWriteRejectsDataAddrOnNonMemClass(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad := isa.Instr{PC: 0x1000, Class: isa.ClassALU, DataAddr: 0x2000}
	if err := w.Write(bad); err == nil {
		t.Fatalf("Write accepted %+v, silently dropping DataAddr", bad)
	}
	// Memory classes still encode their address, including address zero.
	if err := w.Write(isa.Instr{PC: 0x1000, Class: isa.ClassLoad}); err != nil {
		t.Fatalf("Write rejected a load with DataAddr 0: %v", err)
	}
	// A sw-prefetch carries its code address in Target, not DataAddr; it
	// must still be writable.
	if err := w.Write(isa.Instr{PC: 0x1004, Class: isa.ClassSwPrefetch, Target: 0x9000}); err != nil {
		t.Fatalf("Write rejected a sw-prefetch: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseStickyErrorAfterFlushFailure pins Close's error-path contract:
// when the buffered flush fails, the gzip layer must still be closed (no
// leaked compressor) and the failure must be remembered — a second Close
// reports the same error instead of claiming success over an unfinalized
// trace. Before the fix the second Close returned nil.
func TestCloseStickyErrorAfterFlushFailure(t *testing.T) {
	fw := &failWriter{}
	w, err := NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(isa.Instr{PC: 0x40, Class: isa.ClassALU}); err != nil {
		t.Fatal(err)
	}
	first := w.Close()
	if first == nil {
		t.Fatal("Close reported success with a failing underlying writer")
	}
	second := w.Close()
	if second == nil {
		t.Fatal("second Close reported success over an unfinalized trace")
	}
	if !errors.Is(second, errDevice) {
		t.Fatalf("second Close lost the original failure: %v", second)
	}
}

// TestReaderRejectsDataAddrOnNonMemClass hand-crafts a record whose header
// claims a data address on a non-memory class: the reader must surface a
// corrupt-record error, never a garbage instruction.
func TestReaderRejectsDataAddrOnNonMemClass(t *testing.T) {
	var payload bytes.Buffer
	payload.WriteString(magic)
	payload.WriteByte(byte(isa.ClassALU) | flagHasData)
	var tmp []byte
	tmp = binary.AppendUvarint(tmp, zigzag(0x1000))
	payload.Write(tmp) // pc delta
	payload.Write(tmp) // data delta

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in, err := r.Next(); err == nil {
		t.Fatalf("reader decoded garbage record %+v", in)
	}
}

// TestReaderExhaustiveTruncationMutation walks every byte-prefix and every
// single-byte xor-0xff/xor-0x01 mutation of a small valid trace: decoding
// must never panic, and whenever it terminates cleanly (ErrEnd) the decoded
// records must be a prefix of the original sequence — corruption surfaces
// as an error, never as silently different records.
func TestReaderExhaustiveTruncationMutation(t *testing.T) {
	want := sampleInstrs()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	check := func(data []byte) {
		t.Helper()
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var got []isa.Instr
		// A corrupt deflate stream may inflate to far more records than the
		// original before the container CRC error surfaces, so the bound is
		// generous; exhausting it without a clean end is not a failure here
		// (FuzzReaderRobustness owns termination).
		for i := 0; i < 1<<20; i++ {
			in, err := r.Next()
			if errors.Is(err, ErrEnd) {
				// Clean termination: records must be a prefix of the truth.
				if len(got) > len(want) {
					t.Fatalf("decoded %d records from a %d-record trace", len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("record %d decoded as %+v, want %+v", j, got[j], want[j])
					}
				}
				return
			}
			if err != nil {
				return
			}
			got = append(got, in)
		}
	}

	for cut := 0; cut <= len(valid); cut++ {
		check(valid[:cut])
	}
	for pos := range valid {
		for _, xor := range []byte{0xff, 0x01} {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= xor
			check(mut)
		}
	}
}
