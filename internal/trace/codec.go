package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"frontsim/internal/isa"
)

// On-disk format
// --------------
// A trace file is a gzip stream containing:
//
//	magic   [8]byte  "FSIMTRC1"
//	records *
//
// Each record encodes one dynamic instruction:
//
//	header  byte     low 4 bits: isa.Class; bit 4: taken; bit 5: target
//	                 present; bit 6: data address present; bit 7: PC is
//	                 sequential (prev.NextPC()) and therefore omitted
//	pc      uvarint  zig-zag delta from previous PC (absent if sequential)
//	target  uvarint  zig-zag delta from this record's PC (if present)
//	data    uvarint  zig-zag delta from previous data address (if present)
//
// Sequential-PC elision plus delta encoding keeps typical synthetic traces
// near 1.2 bytes/instruction before gzip.

const magic = "FSIMTRC1"

const (
	flagTaken      = 1 << 4
	flagHasTarget  = 1 << 5
	flagHasData    = 1 << 6
	flagSequential = 1 << 7
	classMask      = 0x0f
)

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer serializes instructions to an underlying stream.
type Writer struct {
	gz       *gzip.Writer
	bw       *bufio.Writer
	buf      []byte
	prevPC   isa.Addr
	nextSeq  isa.Addr
	prevData isa.Addr
	started  bool
	closed   bool
	closeErr error
}

// NewWriter creates a Writer emitting the trace container to w.
func NewWriter(w io.Writer) (*Writer, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriterSize(gz, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{gz: gz, bw: bw, buf: make([]byte, 0, 32)}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in isa.Instr) error {
	if w.closed {
		return errors.New("trace: write on closed Writer")
	}
	if int(in.Class) >= isa.NumClasses {
		return fmt.Errorf("trace: invalid class %d", in.Class)
	}
	header := byte(in.Class)
	if in.Taken {
		header |= flagTaken
	}
	sequential := w.started && in.PC == w.nextSeq
	if sequential {
		header |= flagSequential
	}
	hasTarget := in.Target != 0
	if hasTarget {
		header |= flagHasTarget
	}
	hasData := in.Class.IsMem()
	if !hasData && in.DataAddr != 0 {
		// The format only carries a data address for memory classes; encoding
		// this record would silently drop the field and round-trip lossily.
		return fmt.Errorf("trace: %v instruction at %v carries DataAddr %v but is not a memory class", in.Class, in.PC, in.DataAddr)
	}
	if hasData {
		header |= flagHasData
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, header)
	if !sequential {
		w.buf = binary.AppendUvarint(w.buf, zigzag(int64(in.PC)-int64(w.prevPC)))
	}
	if hasTarget {
		w.buf = binary.AppendUvarint(w.buf, zigzag(int64(in.Target)-int64(in.PC)))
	}
	if hasData {
		w.buf = binary.AppendUvarint(w.buf, zigzag(int64(in.DataAddr)-int64(w.prevData)))
		w.prevData = in.DataAddr
	}
	w.prevPC = in.PC
	w.nextSeq = in.NextPC()
	w.started = true
	_, err := w.bw.Write(w.buf)
	return err
}

// Close flushes and finalizes the container. The underlying writer is not
// closed. The gzip layer is closed even when the flush fails, so a failed
// Close never leaks the compressor, and the first error is remembered:
// every subsequent Close reports it again instead of claiming success over
// an unfinalized trace.
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	ferr := w.bw.Flush()
	cerr := w.gz.Close()
	if ferr != nil {
		w.closeErr = ferr
	} else {
		w.closeErr = cerr
	}
	return w.closeErr
}

// Reader decodes a trace container produced by Writer. It implements
// Source.
type Reader struct {
	gz       *gzip.Reader
	br       *bufio.Reader
	prevPC   isa.Addr
	nextSeq  isa.Addr
	prevData isa.Addr
	started  bool
}

// NewReader opens a trace container from r.
func NewReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip container: %w", err)
	}
	br := bufio.NewReaderSize(gz, 1<<16)
	head := make([]byte, len(magic))
	if err := readFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	return &Reader{gz: gz, br: br}, nil
}

// Next implements Source.
func (r *Reader) Next() (isa.Instr, error) {
	header, err := r.br.ReadByte()
	if errors.Is(err, io.EOF) {
		return isa.Instr{}, ErrEnd
	}
	if err != nil {
		return isa.Instr{}, err
	}
	var in isa.Instr
	in.Class = isa.Class(header & classMask)
	if int(in.Class) >= isa.NumClasses {
		return isa.Instr{}, fmt.Errorf("trace: corrupt record class %d", in.Class)
	}
	in.Taken = header&flagTaken != 0
	if header&flagSequential != 0 {
		if !r.started {
			return isa.Instr{}, errors.New("trace: first record marked sequential")
		}
		in.PC = r.nextSeq
	} else {
		d, err := binary.ReadUvarint(r.br)
		if err != nil {
			return isa.Instr{}, fmt.Errorf("trace: reading pc delta: %w", err)
		}
		in.PC = isa.Addr(int64(r.prevPC) + unzigzag(d))
	}
	if header&flagHasTarget != 0 {
		d, err := binary.ReadUvarint(r.br)
		if err != nil {
			return isa.Instr{}, fmt.Errorf("trace: reading target delta: %w", err)
		}
		in.Target = isa.Addr(int64(in.PC) + unzigzag(d))
	}
	if header&flagHasData != 0 {
		if !in.Class.IsMem() {
			return isa.Instr{}, fmt.Errorf("trace: corrupt record: %v class carries a data address", in.Class)
		}
		d, err := binary.ReadUvarint(r.br)
		if err != nil {
			return isa.Instr{}, fmt.Errorf("trace: reading data delta: %w", err)
		}
		in.DataAddr = isa.Addr(int64(r.prevData) + unzigzag(d))
		r.prevData = in.DataAddr
	}
	r.prevPC = in.PC
	r.nextSeq = in.NextPC()
	r.started = true
	return in, nil
}

// Close releases the decompressor.
func (r *Reader) Close() error { return r.gz.Close() }
