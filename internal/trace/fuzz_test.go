package trace

import (
	"bytes"
	"testing"

	"frontsim/internal/isa"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it must
// return errors, never panic or loop.
func FuzzReaderRobustness(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range sampleInstrs() {
		_ = w.Write(in)
	}
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 4 {
		corrupted := append([]byte(nil), valid...)
		corrupted[len(corrupted)/2] ^= 0xff
		f.Add(corrupted)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bounded read: a corrupted stream must terminate with ErrEnd or
		// an error within a sane record count.
		for i := 0; i < 1_000_000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate on fuzzed input")
	})
}

// FuzzCodecRoundTrip checks that any well-formed instruction sequence
// derived from the fuzz input survives a write/read cycle bit-exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), 10)
	f.Add(uint64(42), 200)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 2000 {
			return
		}
		want := randInstrs(seed, n)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(r, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzAddrLine keeps the alignment helpers honest for any address.
func FuzzAddrLine(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, a uint64) {
		l := isa.Addr(a).Line()
		if uint64(l)%isa.LineSize != 0 || uint64(l) > a {
			t.Fatalf("Line(%#x) = %#x", a, uint64(l))
		}
	})
}
