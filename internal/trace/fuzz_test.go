package trace

import (
	"bytes"
	"testing"

	"frontsim/internal/isa"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it must
// return errors, never panic or loop.
func FuzzReaderRobustness(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range sampleInstrs() {
		_ = w.Write(in)
	}
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 4 {
		corrupted := append([]byte(nil), valid...)
		corrupted[len(corrupted)/2] ^= 0xff
		f.Add(corrupted)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bounded read: a corrupted stream must terminate with ErrEnd or
		// an error within a sane record count.
		for i := 0; i < 1_000_000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate on fuzzed input")
	})
}

// FuzzCodecRoundTrip checks that any well-formed instruction sequence
// derived from the fuzz input survives a write/read cycle bit-exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), 10)
	f.Add(uint64(42), 200)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 2000 {
			return
		}
		want := randInstrs(seed, n)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(r, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzReaderTruncationCorruption is the truncation/corruption target: any
// byte-prefix and any single-byte mutation of a valid trace must decode to
// either a clean prefix of the original instruction sequence or an error —
// never silently different records. Garbage delivered before an eventual
// error is acceptable (the caller sees the error); garbage delivered with a
// clean ErrEnd termination is not.
func FuzzReaderTruncationCorruption(f *testing.F) {
	f.Add(uint64(1), 200, -1, byte(0))
	f.Add(uint64(2), 200, 17, byte(0xff))
	f.Add(uint64(3), 40, 0, byte(0x40))
	f.Fuzz(func(t *testing.T, seed uint64, cut, pos int, xor byte) {
		want := randInstrs(seed, 300)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data := append([]byte(nil), buf.Bytes()...)
		if pos >= 0 && pos < len(data) {
			data[pos] ^= xor
		}
		if cut >= 0 && cut < len(data) {
			data = data[:cut]
		}

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var got []isa.Instr
		// Corrupt deflate data may inflate well past the original record
		// count before the container CRC error surfaces; the bound is
		// generous and exhausting it is left to FuzzReaderRobustness.
		for i := 0; i < 1<<22; i++ {
			in, err := r.Next()
			if err == ErrEnd {
				if len(got) > len(want) {
					t.Fatalf("decoded %d records from a %d-record trace", len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("clean termination with corrupt record %d: %+v != %+v", j, got[j], want[j])
					}
				}
				return
			}
			if err != nil {
				return
			}
			got = append(got, in)
		}
	})
}

// FuzzAddrLine keeps the alignment helpers honest for any address.
func FuzzAddrLine(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, a uint64) {
		l := isa.Addr(a).Line()
		if uint64(l)%isa.LineSize != 0 || uint64(l) > a {
			t.Fatalf("Line(%#x) = %#x", a, uint64(l))
		}
	})
}
