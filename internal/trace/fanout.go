package trace

import (
	"fmt"
	"math"

	"frontsim/internal/isa"
)

// fanoutFillMax is the block-size hint used when pulling from the wrapped
// source. It only affects how many instructions each underlying NextBlock
// call may deliver, never where readers see block boundaries: boundaries
// are reconstructed per reader from branch classes, the reader's own max,
// and stream end, all of which are properties of the flat stream.
const fanoutFillMax = 256

// fanoutCompactMin is the minimum number of dead leading instructions
// before the window is physically compacted; trimming on every advance
// would memmove the window once per block. Compaction additionally waits
// until the dead prefix is at least half the window, so the bytes moved
// per compaction are no more than the bytes consumed since the last one —
// amortized O(1) copying per instruction regardless of how wide the
// lockstep position spread is.
const fanoutCompactMin = 1024

// Fanout replays one BlockSource to multiple readers, generating and
// decoding each instruction exactly once. It retains a sliding window of
// the stream: the window's leading edge grows on demand (single-owner
// fill — only the reader that first needs an instruction pulls from the
// wrapped source), and its trailing edge follows the rearmost live
// reader, so a set of readers advanced in lockstep keeps the window
// bounded by their position spread no matter how long the stream is. A
// reader that is
// finished must Detach so it stops pinning the trailing edge.
//
// Like every Source, a Fanout and its readers are confined to one
// goroutine; the lockstep batch driver (internal/core.RunBatch) is
// single-threaded by construction.
type Fanout struct {
	src     BlockSource
	win     []isa.Instr
	base    int64 // absolute stream index of win[0]
	ended   bool  // src returned a terminal error; win holds the full tail
	endErr  error // the terminal error (ErrEnd, or a real failure)
	scratch []isa.Instr
	readers []*FanoutReader
	maxWin  int // high-water mark of len(win), for window-bound tests
}

// NewFanout wraps src. Readers created before any of them advances
// observe the stream from its beginning; see NewReader.
func NewFanout(src BlockSource) *Fanout {
	return &Fanout{src: src, scratch: make([]isa.Instr, 0, fanoutFillMax)}
}

// NewReader registers a reader positioned at the oldest retained
// instruction. Create every reader before advancing any of them: once
// reading starts, the window's trailing edge follows the rearmost live
// reader, and a reader created later would begin mid-stream.
func (f *Fanout) NewReader() *FanoutReader {
	r := &FanoutReader{f: f, pos: f.base}
	f.readers = append(f.readers, r)
	return r
}

// Window returns the current retained-window length in instructions.
func (f *Fanout) Window() int { return len(f.win) }

// MaxWindow returns the high-water mark of the retained window — the
// peak memory the fan-out held, which lockstep readers keep bounded by
// their scheduler's position-spread quantum.
func (f *Fanout) MaxWindow() int { return f.maxWin }

// ensure makes the instruction at absolute position pos resident,
// returning the stream's terminal error if it ended before pos.
func (f *Fanout) ensure(pos int64) error {
	if pos < f.base {
		panic("trace: fanout reader behind the retained window (advanced after Detach, or created late)")
	}
	for pos >= f.base+int64(len(f.win)) {
		if f.ended {
			return f.endErr
		}
		f.compact()
		f.fill()
	}
	return nil
}

// fill pulls one block from the wrapped source onto the window's leading
// edge. The scratch buffer keeps the underlying NextBlock's "appends to
// buf" contract away from the window slice, whose capacity the compactor
// owns.
func (f *Fanout) fill() {
	out, err := f.src.NextBlock(f.scratch[:0], fanoutFillMax)
	f.win = append(f.win, out...)
	f.scratch = out[:0]
	if len(f.win) > f.maxWin {
		f.maxWin = len(f.win)
	}
	if err != nil {
		f.ended, f.endErr = true, err
		return
	}
	if len(out) == 0 {
		// A non-end call must yield at least one instruction; treat a
		// violation as a terminal failure rather than spinning.
		f.ended, f.endErr = true, fmt.Errorf("trace: fanout source returned an empty block without ending")
	}
}

// compact drops instructions every live reader has consumed. Detached
// readers do not pin the window.
func (f *Fanout) compact() {
	min := f.base + int64(len(f.win))
	for _, r := range f.readers {
		if r.pos < min {
			min = r.pos
		}
	}
	trim := min - f.base
	if trim <= 0 {
		return
	}
	emptied := min == f.base+int64(len(f.win))
	if emptied || (trim >= fanoutCompactMin && trim*2 >= int64(len(f.win))) {
		n := copy(f.win, f.win[trim:])
		f.win = f.win[:n]
		f.base = min
	}
}

// FanoutReader is one consumer's view of a Fanout. It implements Source
// and BlockSource with exactly the wrapped stream's semantics: the same
// instructions, and NextBlock runs ending where the contract ends them —
// after a branch (inclusive), at the caller's max, or at stream end with
// any non-branch tail reported together with ErrEnd.
type FanoutReader struct {
	f        *Fanout
	pos      int64 // absolute stream position (== instructions consumed)
	detached bool
}

// Consumed returns the number of instructions the reader has consumed —
// the stream position the lockstep batch scheduler aligns on.
func (r *FanoutReader) Consumed() int64 { return r.pos }

// Detach releases the reader's claim on the shared window. Idempotent.
// The reader must not be advanced afterwards: the window may have moved
// past its position.
func (r *FanoutReader) Detach() {
	if r.detached {
		return
	}
	r.detached = true
	for i, o := range r.f.readers {
		if o == r {
			rs := r.f.readers
			r.f.readers = append(rs[:i:i], rs[i+1:]...)
			break
		}
	}
	// Let the trailing edge move up to the remaining readers, then park
	// the position where any post-detach advance trips ensure's guard.
	r.f.compact()
	r.pos = math.MinInt64
}

// Next implements Source.
func (r *FanoutReader) Next() (isa.Instr, error) {
	if err := r.f.ensure(r.pos); err != nil {
		return isa.Instr{}, err
	}
	in := r.f.win[r.pos-r.f.base]
	r.pos++
	return in, nil
}

// NextBlock implements BlockSource by re-chunking the shared flat stream.
// The cut points depend only on branch positions, max, and stream end —
// all properties of the stream itself — so any reader observes exactly
// the block sequence a fresh single-owner source would have produced
// (TestFanoutReaderContract). The underlying fill block size is
// invisible: runs are address-contiguous across fill boundaries because
// discontinuities only follow branch-class instructions, where every run
// already ends.
func (r *FanoutReader) NextBlock(buf []isa.Instr, max int) ([]isa.Instr, error) {
	n0 := len(buf)
	for len(buf)-n0 < max {
		if err := r.f.ensure(r.pos); err != nil {
			// Stream end (or failure) reached while the current run is
			// open: report it together with the non-branch tail, exactly
			// like the incremental consumer's lookahead would.
			return buf, err
		}
		// Scan the resident window directly — ensure is hoisted out of the
		// per-instruction path, which the batched suite traverses once per
		// reader per instruction.
		win := r.f.win[r.pos-r.f.base:]
		if want := max - (len(buf) - n0); len(win) > want {
			win = win[:want]
		}
		for i := range win {
			in := win[i]
			if len(buf) > n0 && in.PC != buf[len(buf)-1].PC+isa.InstrSize {
				// Defensive: contiguity can only break after a branch, where
				// the run has already ended; mirror the incremental
				// fallback's boundary check anyway.
				return buf, nil
			}
			buf = append(buf, in)
			r.pos++
			if in.Class.IsBranch() {
				return buf, nil
			}
		}
	}
	return buf, nil
}
