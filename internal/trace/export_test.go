package trace

import (
	"compress/gzip"
	"io"
)

// newGzip exposes a raw gzip writer to tests that need to hand-craft
// malformed containers.
func newGzip(w io.Writer) *gzip.Writer { return gzip.NewWriter(w) }
