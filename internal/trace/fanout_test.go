package trace

import (
	"errors"
	"fmt"
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

// chunkSource is the reference BlockSource for the fan-out tests: an
// in-memory stream implementing the documented contract directly — runs
// end after a branch (inclusive), when the buffer grows by max, or at
// stream end with any non-branch tail reported together with ErrEnd.
type chunkSource struct {
	instrs []isa.Instr
	pos    int
}

func (c *chunkSource) Next() (isa.Instr, error) {
	if c.pos >= len(c.instrs) {
		return isa.Instr{}, ErrEnd
	}
	in := c.instrs[c.pos]
	c.pos++
	return in, nil
}

func (c *chunkSource) NextBlock(buf []isa.Instr, max int) ([]isa.Instr, error) {
	n0 := len(buf)
	for len(buf)-n0 < max {
		if c.pos >= len(c.instrs) {
			return buf, ErrEnd
		}
		in := c.instrs[c.pos]
		c.pos++
		buf = append(buf, in)
		if in.Class.IsBranch() {
			return buf, nil
		}
	}
	return buf, nil
}

// synthStream generates a deterministic contiguous instruction stream: PCs
// advance by InstrSize within a run and redirect only at taken branches,
// matching the invariant real executors guarantee (discontinuities occur
// only after branch-class instructions).
func synthStream(seed uint64, n int, branchFinal bool) []isa.Instr {
	sm := xrand.NewSplitMix64(seed)
	pc := isa.Addr(0x1000)
	out := make([]isa.Instr, 0, n)
	branchClasses := []isa.Class{isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassReturn, isa.ClassIndirect}
	for len(out) < n {
		in := isa.Instr{PC: pc}
		switch sm.Next() % 8 {
		case 0, 1:
			cl := branchClasses[sm.Next()%uint64(len(branchClasses))]
			in.Class = cl
			in.Taken = cl != isa.ClassBranch || sm.Next()%2 == 0
			in.Target = isa.Addr(0x1000 + (sm.Next()%4096)*isa.InstrSize)
		case 2:
			in.Class = isa.ClassLoad
			in.DataAddr = isa.Addr(0x100000 + sm.Next()%65536)
		default:
			in.Class = isa.ClassALU
		}
		out = append(out, in)
		pc = in.NextPC()
	}
	if branchFinal {
		out[n-1].Class = isa.ClassJump
		out[n-1].Taken = true
		out[n-1].Target = 0x1000
	} else if out[n-1].Class.IsBranch() {
		out[n-1] = isa.Instr{PC: out[n-1].PC, Class: isa.ClassALU}
	}
	return out
}

// obsStep is one recorded reader observation, replayable against a fresh
// reference source.
type obsStep struct {
	nextBlock bool
	max       int
	got       []isa.Instr
	err       error
}

func replay(t *testing.T, label string, src Source, log []obsStep) {
	t.Helper()
	bs, _ := AsBlockSource(src)
	for i, step := range log {
		var got []isa.Instr
		var err error
		if step.nextBlock {
			got, err = bs.NextBlock(nil, step.max)
		} else {
			var in isa.Instr
			in, err = src.Next()
			if err == nil {
				got = []isa.Instr{in}
			}
		}
		if !errors.Is(err, step.err) || (err == nil) != (step.err == nil) {
			t.Fatalf("%s step %d: error %v, reference %v", label, i, step.err, err)
		}
		if len(got) != len(step.got) {
			t.Fatalf("%s step %d: %d instrs, reference %d\nfanout: %v\nref:    %v",
				label, i, len(step.got), len(got), step.got, got)
		}
		for j := range got {
			if got[j] != step.got[j] {
				t.Fatalf("%s step %d instr %d: fanout %v, reference %v", label, i, j, step.got[j], got[j])
			}
		}
	}
}

// TestFanoutSingleReaderMatchesSource pins the degenerate case: one reader
// must reproduce the wrapped source's block sequence exactly, for every
// block size and for both stream-end shapes (branch-final, where ErrEnd
// surfaces alone on the next call, and non-branch-final, where it arrives
// together with the tail).
func TestFanoutSingleReaderMatchesSource(t *testing.T) {
	for _, branchFinal := range []bool{false, true} {
		for _, max := range []int{1, 3, 8, 33, 1000} {
			label := fmt.Sprintf("branchFinal=%v/max=%d", branchFinal, max)
			stream := synthStream(7, 5000, branchFinal)
			f := NewFanout(&chunkSource{instrs: stream})
			r := f.NewReader()
			ref := &chunkSource{instrs: stream}
			for i := 0; ; i++ {
				got, gerr := r.NextBlock(nil, max)
				want, werr := ref.NextBlock(nil, max)
				if !errors.Is(gerr, werr) || (gerr == nil) != (werr == nil) {
					t.Fatalf("%s block %d: error %v, reference %v", label, i, gerr, werr)
				}
				if len(got) != len(want) {
					t.Fatalf("%s block %d: %d instrs, reference %d", label, i, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s block %d instr %d: %v, reference %v", label, i, j, got[j], want[j])
					}
				}
				if gerr != nil {
					break
				}
			}
		}
	}
}

// TestFanoutReaderContract is the multi-reader contract property: whatever
// interleaving of reader advances — mixed Next and NextBlock calls with
// varying max, heterogeneous per-reader Limit budgets (exercising the
// budget-chop edge), early detach — every reader observes exactly the
// sequence a fresh single-reader source would have produced for the same
// calls.
func TestFanoutReaderContract(t *testing.T) {
	for trial := uint64(0); trial < 12; trial++ {
		sm := xrand.NewSplitMix64(0xfa40 + trial)
		stream := synthStream(trial, 3000+int(sm.Next()%2000), trial%2 == 0)
		nReaders := 2 + int(sm.Next()%3)
		f := NewFanout(&chunkSource{instrs: stream})

		type rdr struct {
			src   Source // the fanout reader, possibly Limit-wrapped
			bs    BlockSource
			inner *FanoutReader
			limit int64 // 0: unlimited
			log   []obsStep
			dead  bool
		}
		readers := make([]*rdr, nReaders)
		for i := range readers {
			inner := f.NewReader()
			r := &rdr{inner: inner, src: inner, bs: inner}
			if sm.Next()%2 == 0 {
				// Budgets around the stream length hit both the chop-early
				// and natural-end paths.
				r.limit = int64(sm.Next() % uint64(len(stream)+500))
				lim := NewLimit(inner, r.limit)
				r.src, r.bs = lim, lim
			}
			readers[i] = r
		}

		live := nReaders
		for live > 0 {
			r := readers[sm.Next()%uint64(nReaders)]
			if r.dead {
				continue
			}
			step := obsStep{nextBlock: sm.Next()%4 != 0}
			if step.nextBlock {
				step.max = 1 + int(sm.Next()%12)
				step.got, step.err = r.bs.NextBlock(nil, step.max)
			} else {
				in, err := r.src.Next()
				step.err = err
				if err == nil {
					step.got = []isa.Instr{in}
				}
			}
			r.log = append(r.log, step)
			if step.err != nil {
				if !errors.Is(step.err, ErrEnd) {
					t.Fatalf("trial %d: unexpected error %v", trial, step.err)
				}
				r.dead = true
				r.inner.Detach()
				live--
			}
		}

		for i, r := range readers {
			var ref Source = &chunkSource{instrs: stream}
			if r.limit > 0 || r.src != Source(r.inner) {
				ref = NewLimit(ref, r.limit)
			}
			replay(t, fmt.Sprintf("trial %d reader %d (limit %d)", trial, i, r.limit), ref, r.log)
		}
	}
}

// TestFanoutWindowBounded pins the memory contract: readers advanced in
// near-lockstep keep the retained window within a couple of fill chunks
// plus the compaction hysteresis, independent of stream length.
func TestFanoutWindowBounded(t *testing.T) {
	stream := synthStream(21, 40_000, true)
	f := NewFanout(&chunkSource{instrs: stream})
	rs := []*FanoutReader{f.NewReader(), f.NewReader(), f.NewReader()}
	liveCount := len(rs)
	for liveCount > 0 {
		for _, r := range rs {
			if r.Consumed() < 0 { // detached
				continue
			}
			if _, err := r.NextBlock(nil, 8); err != nil {
				r.Detach()
				liveCount--
			}
		}
	}
	bound := fanoutCompactMin + 2*fanoutFillMax + 64
	if f.MaxWindow() > bound {
		t.Fatalf("window high-water %d exceeds bound %d for lockstep readers over %d instrs",
			f.MaxWindow(), bound, len(stream))
	}
}

// TestFanoutDetachReleasesWindow pins detach semantics: a straggler pins
// the window until it detaches; afterwards the leader can run the stream
// out without unbounded growth, and advancing the detached reader panics
// rather than silently reading a moved window.
func TestFanoutDetachReleasesWindow(t *testing.T) {
	stream := synthStream(33, 30_000, false)
	f := NewFanout(&chunkSource{instrs: stream})
	straggler, leader := f.NewReader(), f.NewReader()

	for leader.Consumed() < 5_000 {
		if _, err := leader.NextBlock(nil, 8); err != nil {
			t.Fatal("stream ended early")
		}
	}
	if got := f.Window(); got < 5_000-fanoutFillMax {
		t.Fatalf("straggler at 0 should pin the window, got %d retained", got)
	}
	straggler.Detach()
	straggler.Detach() // idempotent
	for {
		if _, err := leader.NextBlock(nil, 8); err != nil {
			break
		}
	}
	if got := f.Window(); got > fanoutCompactMin+2*fanoutFillMax {
		t.Fatalf("window %d still pinned after detach", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("advancing a detached reader did not panic")
		}
	}()
	straggler.Next()
}
