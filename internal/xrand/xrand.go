// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator. Every workload generator,
// program executor and experiment derives its randomness from an explicit
// seed so that runs are exactly reproducible across machines and Go
// versions (math/rand's global source and shuffling algorithms are not
// guaranteed stable across releases, and determinism is load-bearing here:
// AsmDB rewrites a program and re-executes it expecting the identical
// control-flow path).
package xrand

import "math"

// SplitMix64 is the seed-expansion generator from Steele, Lea & Flood
// ("Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). It is
// used both directly and to seed Xoshiro256** states.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** PRNG (Blackman & Vigna). It offers excellent
// statistical quality for the simulator's needs at a few ns per draw, with
// a fixed, documented algorithm that will never change underneath us.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded deterministically from seed via SplitMix64.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (number of Bernoulli(1/m) trials until first success, minimum 1). Used
// for basic-block lengths and loop trip counts. m <= 1 returns 1.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // defensive bound; p>0 so unreachable in practice
			break
		}
	}
	return n
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew s
// using inverse-CDF over precomputed weights held by the caller; for
// convenience the simulator mostly uses WeightedChoice instead. This method
// implements rejection-free sampling for small n by linear walk and is
// intended for n up to a few thousand.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Linear-walk inverse CDF. Total harmonic weight computed on the fly;
	// two passes keep the method allocation-free.
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / pow(float64(i), s)
	}
	target := r.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / pow(float64(i), s)
		if target < acc {
			return i - 1
		}
	}
	return n - 1
}

// pow is a small positive-base power; math.Pow would be fine but this keeps
// the hot path branch-free for the common integer-ish exponents used here.
func pow(base, exp float64) float64 {
	// Defer to the obvious identity exp(log): precision is ample for
	// sampling weights.
	return exp2(exp * log2(base))
}

func exp2(x float64) float64 { return math.Exp2(x) }
func log2(x float64) float64 { return math.Log2(x) }

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise it returns 0.
func (r *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new Rand whose state is derived from this one's stream,
// so independent subsystems can draw without interleaving each other's
// sequences (e.g. control-flow randomness vs. data-address randomness).
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}
