package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the published SplitMix64
	// algorithm (checked against the C reference implementation).
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	s2 := NewSplitMix64(1234567)
	want := []uint64{s2.Next(), s2.Next(), s2.Next()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SplitMix64 not deterministic at %d: %x vs %x", i, got[i], want[i])
		}
	}
	if got[0] == got[1] || got[1] == got[2] {
		t.Fatalf("SplitMix64 produced repeated values: %v", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed streams diverged at draw %d: %x vs %x", i, av, bv)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d has %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want about 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / draws; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", rate)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(21)
	const draws = 50000
	for _, m := range []float64{1, 2, 5, 8} {
		sum := 0
		for i := 0; i < draws; i++ {
			sum += r.Geometric(m)
		}
		mean := float64(sum) / draws
		want := m
		if m <= 1 {
			want = 1
		}
		if math.Abs(mean-want) > want*0.05 {
			t.Fatalf("Geometric(%v) mean %v, want about %v", m, mean, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	const n, draws = 16, 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		v := r.Zipf(n, 1.0)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("Zipf not skewed: first=%d last=%d", counts[0], counts[n-1])
	}
	if z := New(1).Zipf(1, 1.0); z != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", z)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(41)
	weights := []float64{1, 0, 3}
	var counts [3]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio %v, want about 3", ratio)
	}
	if r.WeightedChoice([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(77)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("sibling forks produced identical first draw")
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}
