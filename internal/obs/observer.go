package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// DefaultSampleCap is the ring capacity used when Options.SampleCap is
// unset: enough to cover a 250k-cycle run at stride 64 without wrapping.
const DefaultSampleCap = 4096

// Options configures an Observer.
type Options struct {
	// Stride is the sampling period in cycles; <= 0 means every cycle.
	Stride int64
	// SampleCap bounds the sample ring; the ring keeps the most recent
	// SampleCap samples. <= 0 selects DefaultSampleCap.
	SampleCap int
	// Events, when non-nil, receives the event trace as JSONL (one Event
	// object per line), in simulation order.
	Events io.Writer
	// MaxEvents caps how many events are written to Events; once reached,
	// further events are counted (DroppedEvents) but not written. <= 0
	// means unlimited.
	MaxEvents int64
}

// Observer is the standard Sink: it keeps the most recent samples in a
// fixed ring, streams events as JSONL, and tallies per-kind event counts.
// It is not safe for concurrent use; each simulation needs its own.
type Observer struct {
	opts Options

	ring  []Sample
	next  int   // ring slot for the next sample
	total int64 // samples ever taken (>= len(ring) once wrapped)

	enc     *bufio.Writer
	written int64
	dropped int64
	counts  [numEventKinds]int64
	err     error
}

// NewObserver builds an Observer from opts.
func NewObserver(opts Options) *Observer {
	if opts.Stride <= 0 {
		opts.Stride = 1
	}
	if opts.SampleCap <= 0 {
		opts.SampleCap = DefaultSampleCap
	}
	o := &Observer{opts: opts, ring: make([]Sample, 0, opts.SampleCap)}
	if opts.Events != nil {
		o.enc = bufio.NewWriter(opts.Events)
	}
	return o
}

// SampleStride implements Sink.
func (o *Observer) SampleStride() int64 { return o.opts.Stride }

// Sample implements Sink, appending to the ring (overwriting the oldest
// sample once the ring is full).
func (o *Observer) Sample(s Sample) {
	if len(o.ring) < cap(o.ring) {
		o.ring = append(o.ring, s)
	} else {
		o.ring[o.next] = s
	}
	o.next++
	if o.next == cap(o.ring) {
		o.next = 0
	}
	o.total++
}

// Event implements Sink, streaming the record as one JSONL line.
func (o *Observer) Event(e Event) {
	if int(e.Kind) < len(o.counts) {
		o.counts[e.Kind]++
	}
	if o.enc == nil || o.err != nil {
		return
	}
	if o.opts.MaxEvents > 0 && o.written >= o.opts.MaxEvents {
		o.dropped++
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		o.err = err
		return
	}
	if _, err := o.enc.Write(b); err != nil {
		o.err = err
		return
	}
	if err := o.enc.WriteByte('\n'); err != nil {
		o.err = err
		return
	}
	o.written++
}

// Samples returns the retained samples in chronological order. The slice
// is freshly allocated.
func (o *Observer) Samples() []Sample {
	out := make([]Sample, 0, len(o.ring))
	if len(o.ring) < cap(o.ring) || o.total == int64(len(o.ring)) {
		return append(out, o.ring...)
	}
	out = append(out, o.ring[o.next:]...)
	return append(out, o.ring[:o.next]...)
}

// TotalSamples reports how many samples were taken, including any that
// have since been overwritten in the ring.
func (o *Observer) TotalSamples() int64 { return o.total }

// EventCount returns how many events of kind k were observed (including
// any dropped past MaxEvents).
func (o *Observer) EventCount(k EventKind) int64 {
	if int(k) >= len(o.counts) {
		return 0
	}
	return o.counts[k]
}

// DroppedEvents reports events counted but not written because MaxEvents
// was reached.
func (o *Observer) DroppedEvents() int64 { return o.dropped }

// Flush drains buffered event output.
func (o *Observer) Flush() error {
	if o.enc != nil {
		if err := o.enc.Flush(); err != nil && o.err == nil {
			o.err = err
		}
	}
	return o.err
}

// Err returns the first write/encode error, if any.
func (o *Observer) Err() error { return o.err }

// WriteSamples writes the retained samples as JSONL in chronological
// order.
func WriteSamples(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	for _, s := range samples {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSONL event trace, e.g. one produced by Observer.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}

// FileObserver is an Observer whose event trace streams to
// <dir>/<label>.events.jsonl and whose retained samples are written to
// <dir>/<label>.samples.jsonl on Close.
type FileObserver struct {
	*Observer
	dir   string
	label string
	f     *os.File
}

// SanitizeLabel maps an arbitrary run label to a filesystem-safe stem:
// anything outside [A-Za-z0-9._-] becomes '_'.
func SanitizeLabel(label string) string {
	b := []byte(label)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	if len(b) == 0 {
		return "run"
	}
	return string(b)
}

// NewFileObserver creates dir if needed and opens the event stream. The
// label is sanitized with SanitizeLabel.
func NewFileObserver(dir, label string, opts Options) (*FileObserver, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	label = SanitizeLabel(label)
	f, err := os.Create(filepath.Join(dir, label+".events.jsonl"))
	if err != nil {
		return nil, err
	}
	opts.Events = f
	return &FileObserver{Observer: NewObserver(opts), dir: dir, label: label, f: f}, nil
}

// Close flushes the event stream, closes it, and writes the sample file.
func (o *FileObserver) Close() error {
	err := o.Flush()
	if cerr := o.f.Close(); err == nil {
		err = cerr
	}
	sf, serr := os.Create(filepath.Join(o.dir, o.label+".samples.jsonl"))
	if serr != nil {
		if err == nil {
			err = serr
		}
		return err
	}
	if werr := WriteSamples(sf, o.Samples()); werr != nil && err == nil {
		err = werr
	}
	if cerr := sf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// EventCountsMetricSet renders the observer's per-kind event totals as
// metrics, with the given base labels plus kind=<name>.
func (o *Observer) EventCountsMetricSet(labels ...Label) MetricSet {
	var ms MetricSet
	for k := EventKind(0); k < numEventKinds; k++ {
		kl := make([]Label, 0, len(labels)+1)
		kl = append(kl, labels...)
		kl = append(kl, Label{Key: "kind", Value: k.String()})
		sort.Slice(kl, func(i, j int) bool { return kl[i].Key < kl[j].Key })
		ms.Add(Metric{
			Name:   "frontsim_obs_events_total",
			Help:   "Structured front-end events observed, by kind.",
			Labels: kl,
			Value:  float64(o.counts[k]),
		})
	}
	return ms
}

var _ Sink = (*Observer)(nil)

// Tee fans a Sink out to several sinks; stride is the minimum of the
// children's strides.
type Tee []Sink

// Event implements Sink.
func (t Tee) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}

// Sample implements Sink.
func (t Tee) Sample(sm Sample) {
	for _, s := range t {
		s.Sample(sm)
	}
}

// SampleStride implements Sink.
func (t Tee) SampleStride() int64 {
	var min int64
	for _, s := range t {
		st := s.SampleStride()
		if st <= 0 {
			st = 1
		}
		if min == 0 || st < min {
			min = st
		}
	}
	if min == 0 {
		return 1
	}
	return min
}

func init() {
	// Compile-time-ish guard that every kind has a wire name.
	for i, n := range eventKindNames {
		if n == "" {
			panic(fmt.Sprintf("obs: EventKind %d has no name", i))
		}
	}
}
