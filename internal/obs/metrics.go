package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"frontsim/internal/stats"
)

// Label is one metric dimension. Keys should be snake_case identifiers.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Metric is one exported data point. Labels must be sorted by key; Add
// enforces this.
type Metric struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// seriesKey identifies a metric series (name + label set) for sorting and
// deduplication.
func (m Metric) seriesKey() string {
	var b strings.Builder
	b.WriteString(m.Name)
	for _, l := range m.Labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// MetricSet is an ordered collection of metrics. Exporters sort it, so
// identical contents serialize identically regardless of insertion order.
type MetricSet []Metric

// Add appends m, sorting its labels by key first.
func (ms *MetricSet) Add(m Metric) {
	sort.Slice(m.Labels, func(i, j int) bool { return m.Labels[i].Key < m.Labels[j].Key })
	*ms = append(*ms, m)
}

// Sort orders the set by series key (name, then labels), breaking ties
// on value. The order is total up to byte-identical points, so a set's
// serialization depends only on its contents — collectors fed the same
// points in any order (e.g. batched vs per-cell suite execution) export
// identical bytes even when distinct cells share a series key.
func (ms MetricSet) Sort() {
	sort.Slice(ms, func(i, j int) bool {
		ki, kj := ms[i].seriesKey(), ms[j].seriesKey()
		if ki != kj {
			return ki < kj
		}
		return ms[i].Value < ms[j].Value
	})
}

// WriteJSON writes the set as canonical JSON: sorted, one metric object
// per line inside a top-level array, trailing newline. Byte-identical for
// identical contents.
func (ms MetricSet) WriteJSON(w io.Writer) error {
	sorted := append(MetricSet(nil), ms...)
	sorted.Sort()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, m := range sorted {
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("  "); err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double-quote and newline.
func promEscape(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promValue formats a sample value per the text exposition format.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the set in the Prometheus text exposition
// format (version 0.0.4): sorted, with one # HELP/# TYPE header per
// metric family. All metrics are exported as gauges — they are
// end-of-run snapshots, not live counters.
func (ms MetricSet) WritePrometheus(w io.Writer) error {
	sorted := append(MetricSet(nil), ms...)
	sorted.Sort()
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, m := range sorted {
		if m.Name != prevName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "# TYPE %s gauge\n", m.Name); err != nil {
				return err
			}
			prevName = m.Name
		}
		if _, err := bw.WriteString(m.Name); err != nil {
			return err
		}
		if len(m.Labels) > 0 {
			if err := bw.WriteByte('{'); err != nil {
				return err
			}
			for i, l := range m.Labels {
				if i > 0 {
					if err := bw.WriteByte(','); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(bw, `%s="%s"`, l.Key, promEscape(l.Value)); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('}'); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, " %s\n", promValue(m.Value)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SuiteCollector accumulates per-run MetricSets across a suite (cached
// and live jobs alike) and exports them with suite-level rollups. Safe
// for concurrent Record calls from runner workers.
type SuiteCollector struct {
	mu   sync.Mutex
	runs MetricSet
}

// Record merges one run's metrics into the collector.
func (c *SuiteCollector) Record(ms MetricSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, ms...)
}

// Len reports how many metric points have been recorded.
func (c *SuiteCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// Export returns the recorded per-run metrics plus suite-level rollups:
// for every metric family with more than one point, mean/min/max/p50/p95
// across all recorded points, labeled stat=<rollup>. The result is
// sorted; repeated Export calls over the same records are identical.
func (c *SuiteCollector) Export() MetricSet {
	c.mu.Lock()
	runs := append(MetricSet(nil), c.runs...)
	c.mu.Unlock()

	out := runs
	out.Sort()

	// Group values by family name. Collect names in first-seen order from
	// the sorted set (so iteration below is deterministic without ranging
	// over the map).
	byName := make(map[string][]float64)
	help := make(map[string]string)
	var names []string
	for _, m := range out {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
			help[m.Name] = m.Help
		}
		byName[m.Name] = append(byName[m.Name], m.Value)
	}

	rollups := []struct {
		stat string
		fn   func([]float64) float64
	}{
		{"mean", stats.Mean},
		{"min", stats.Min},
		{"max", stats.Max},
		{"p50", func(xs []float64) float64 { return stats.Percentile(xs, 50) }},
		{"p95", func(xs []float64) float64 { return stats.Percentile(xs, 95) }},
	}
	var agg MetricSet
	for _, name := range names {
		vals := byName[name]
		if len(vals) < 2 {
			continue
		}
		h := help[name]
		if h != "" {
			h += " (suite rollup)"
		}
		for _, r := range rollups {
			agg.Add(Metric{
				Name:   name + "_suite",
				Help:   h,
				Labels: []Label{{Key: "stat", Value: r.stat}},
				Value:  r.fn(vals),
			})
		}
	}
	out = append(out, agg...)
	out.Sort()
	return out
}
