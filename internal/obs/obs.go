// Package obs is the simulator's observability layer: a per-cycle
// time-series sampler, a structured front-end event trace, and a metrics
// exporter (canonical JSON and Prometheus text format).
//
// The paper's argument is time-resolved — FTQ Scenario 1/2/3 incidence,
// head-stall latency and L1-I access merging are per-cycle phenomena — so
// end-of-run aggregates alone cannot explain a regression or an ablation
// anomaly. This package gives every run an optional window into cycle
// behaviour without perturbing it:
//
//   - observation is strictly read-only: a Sink receives copies of state
//     the simulator already computed, and nothing flows back. Simulated
//     results are bit-identical with observation on or off (pinned by
//     TestObsObservational in internal/core and the CI obs-smoke diff);
//   - disabled means free: every hook site is a nil check on a Sink
//     field, the same pattern as core.Config.Audit. No sample is built
//     and no event is allocated unless a sink is attached;
//   - output is deterministic: events are emitted in simulation order,
//     samples at fixed cycle strides, and every exporter sorts before
//     writing, so two runs of the same configuration produce
//     byte-identical artifacts.
//
// The package sits below the whole simulator stack (it imports only
// internal/stats and the standard library), so internal/cache,
// internal/ftq, internal/frontend and internal/core can all hold a Sink.
// Simulated time arrives as plain int64 cycles to keep the dependency
// direction acyclic.
package obs

import (
	"encoding/json"
	"fmt"
)

// EventKind enumerates the structured front-end events the simulator
// emits. The set mirrors the control-flow and prefetch edges the paper's
// characterization turns on.
type EventKind uint8

const (
	// EvRedirect: the front-end restarted after a wrong-path branch
	// resolved in the back-end (execute-time recovery). Arg carries the
	// cycle fill resumes.
	EvRedirect EventKind = iota
	// EvPFC: a post-fetch correction — a BTB-missed direct branch was
	// discovered at pre-decode and fill resumed early. Addr is the branch
	// PC, Arg the cycle fill resumes.
	EvPFC
	// EvFlush: the FTQ discarded all resident entries. Arg is the number
	// of entries discarded.
	EvFlush
	// EvPrefetchIssue: a software prefetch fired at pre-decode. Addr is
	// the target address; Arg is 1 for a trigger-table (no-overhead)
	// prefetch, 0 for an inserted prefetch instruction.
	EvPrefetchIssue
	// EvPrefetchFill: a prefetch filled a cache line (it missed and
	// allocated). Addr is the line address, Arg the fill latency.
	EvPrefetchFill
	// EvMergeHit: an FTQ entry's cache line was already covered by a
	// resident entry's request, so no L1-I access was issued (the §V-B
	// aliasing effect). Addr is the line address.
	EvMergeHit

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"redirect",
	"pfc_correction",
	"flush",
	"prefetch_issue",
	"prefetch_fill",
	"merge_hit",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("unknown_%d", uint8(k))
}

// MarshalJSON renders the kind as its wire name, so JSONL traces are
// self-describing rather than coupling consumers to enum ordinals.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the wire name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range eventKindNames {
		if n == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one structured trace record. Addr and Arg are kind-specific
// (see the EventKind constants); unused fields stay zero and are omitted
// from the JSONL encoding.
type Event struct {
	Cycle int64     `json:"cycle"`
	Kind  EventKind `json:"kind"`
	Addr  uint64    `json:"addr,omitempty"`
	Arg   int64     `json:"arg,omitempty"`
}

// Scenario is the per-cycle FTQ state classification carried by samples:
// 0 = empty, 1 = shoot-through (Scenario 1), 2 = stalling head over a
// completed follower (Scenario 2), 3 = shadow stall (Scenario 3).
type Scenario uint8

const (
	ScenarioEmpty Scenario = iota
	ScenarioShootThrough
	Scenario2
	Scenario3
)

var scenarioNames = [4]string{"empty", "shoot-through", "scenario-2", "scenario-3"}

// String names the scenario as the paper does.
func (s Scenario) String() string {
	if int(s) < len(scenarioNames) {
		return scenarioNames[s]
	}
	return fmt.Sprintf("unknown_%d", uint8(s))
}

// Sample is one point of the per-cycle time series. Counter fields are
// cumulative snapshots (as of the sampled cycle, warmup resets included);
// consumers difference adjacent samples for rates.
type Sample struct {
	Cycle int64 `json:"cycle"`
	// Retired is the cumulative retired program-instruction count, the
	// IPC numerator.
	Retired int64 `json:"retired"`
	// FTQOcc is the resident FTQ entry count; FTQReadyMask has bit i set
	// when the i-th entry from the head (i < 64) has completed its fetch.
	FTQOcc       int    `json:"ftq_occ"`
	FTQReadyMask uint64 `json:"ftq_ready_mask"`
	// Scenario classifies the sampled cycle's FTQ state.
	Scenario Scenario `json:"scenario"`
	// FillStall reports the fill engine blocked on a wrong-path condition.
	FillStall bool `json:"fill_stall,omitempty"`

	L1IAccesses int64 `json:"l1i_accesses"`
	L1IMisses   int64 `json:"l1i_misses"`
	L2Misses    int64 `json:"l2_misses"`
	// SwPrefetches is the cumulative software-prefetch issue count
	// (instruction-carried plus trigger-table).
	SwPrefetches int64 `json:"sw_prefetches"`
}

// Sink receives observability output from a running simulation. All
// methods are invoked from the simulation goroutine, in simulation order;
// implementations need no locking against the simulator but must not
// retain pointers into it. A nil Sink field at every hook site means
// observation is off.
type Sink interface {
	// Event delivers one structured trace record.
	Event(e Event)
	// Sample delivers one time-series point. The simulator calls it every
	// SampleStride cycles.
	Sample(s Sample)
	// SampleStride returns the sampling period in cycles; values <= 0 are
	// treated as 1 (sample every cycle).
	SampleStride() int64
}
