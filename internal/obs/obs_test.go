package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEventKindWireNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "unknown_") {
			t.Fatalf("kind %d has no wire name", k)
		}
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal kind %v: %v", k, err)
		}
		var back EventKind
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("round trip: %v -> %s -> %v", k, b, back)
		}
	}
	var bad EventKind
	if err := bad.UnmarshalJSON([]byte(`"no_such_kind"`)); err == nil {
		t.Fatal("unknown kind name should not unmarshal")
	}
}

func TestObserverRingChronology(t *testing.T) {
	cases := []struct {
		name  string
		cap   int
		n     int64
		first int64 // expected cycle of oldest retained sample
	}{
		{"underfull", 8, 5, 0},
		{"exact", 8, 8, 0},
		{"wrapped", 8, 13, 5},
		{"wrapped-multi", 4, 103, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := NewObserver(Options{SampleCap: tc.cap})
			for i := int64(0); i < tc.n; i++ {
				o.Sample(Sample{Cycle: i})
			}
			got := o.Samples()
			want := tc.n
			if int64(tc.cap) < want {
				want = int64(tc.cap)
			}
			if int64(len(got)) != want {
				t.Fatalf("retained %d samples, want %d", len(got), want)
			}
			for i, s := range got {
				if s.Cycle != tc.first+int64(i) {
					t.Fatalf("sample %d has cycle %d, want %d (not chronological)", i, s.Cycle, tc.first+int64(i))
				}
			}
			if o.TotalSamples() != tc.n {
				t.Fatalf("TotalSamples = %d, want %d", o.TotalSamples(), tc.n)
			}
		})
	}
}

func TestObserverEventStream(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(Options{Events: &buf, MaxEvents: 3})
	events := []Event{
		{Cycle: 1, Kind: EvRedirect, Arg: 9},
		{Cycle: 2, Kind: EvMergeHit, Addr: 0x40},
		{Cycle: 3, Kind: EvPrefetchIssue, Addr: 0x80, Arg: 1},
		{Cycle: 4, Kind: EvFlush, Arg: 5},
		{Cycle: 5, Kind: EvFlush, Arg: 2},
	}
	for _, e := range events {
		o.Event(e)
	}
	if err := o.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if o.DroppedEvents() != 2 {
		t.Fatalf("DroppedEvents = %d, want 2", o.DroppedEvents())
	}
	if got := o.EventCount(EvFlush); got != 2 {
		t.Fatalf("EventCount(EvFlush) = %d, want 2 (dropped events still counted)", got)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(back) != 3 {
		t.Fatalf("wrote %d events, want 3 (MaxEvents cap)", len(back))
	}
	for i, e := range back {
		if e != events[i] {
			t.Fatalf("event %d round trip: got %+v want %+v", i, e, events[i])
		}
	}
}

func TestObserverStrideDefaults(t *testing.T) {
	if got := NewObserver(Options{}).SampleStride(); got != 1 {
		t.Fatalf("default stride = %d, want 1", got)
	}
	if got := NewObserver(Options{Stride: -5}).SampleStride(); got != 1 {
		t.Fatalf("negative stride = %d, want 1", got)
	}
	if got := NewObserver(Options{Stride: 64}).SampleStride(); got != 64 {
		t.Fatalf("stride = %d, want 64", got)
	}
}

func TestFileObserverLifecycle(t *testing.T) {
	dir := t.TempDir()
	o, err := NewFileObserver(dir, "spec/gcc o2", Options{Stride: 8, SampleCap: 4})
	if err != nil {
		t.Fatalf("NewFileObserver: %v", err)
	}
	for i := int64(0); i < 6; i++ {
		o.Sample(Sample{Cycle: i * 8})
	}
	o.Event(Event{Cycle: 3, Kind: EvPFC, Addr: 0x1234})
	if err := o.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	evPath := filepath.Join(dir, "spec_gcc_o2.events.jsonl")
	f, err := os.Open(evPath)
	if err != nil {
		t.Fatalf("sanitized event file missing: %v", err)
	}
	defer f.Close()
	evs, err := ReadEvents(f)
	if err != nil || len(evs) != 1 || evs[0].Kind != EvPFC {
		t.Fatalf("events = %v, %v; want one EvPFC", evs, err)
	}

	sb, err := os.ReadFile(filepath.Join(dir, "spec_gcc_o2.samples.jsonl"))
	if err != nil {
		t.Fatalf("sample file missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(sb)), "\n")
	if len(lines) != 4 {
		t.Fatalf("sample file has %d lines, want 4 (ring cap)", len(lines))
	}
	if !strings.Contains(lines[0], `"cycle":16`) {
		t.Fatalf("oldest retained sample should be cycle 16, got %q", lines[0])
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := [][2]string{
		{"gcc/fdp24", "gcc_fdp24"},
		{"a b\tc", "a_b_c"},
		{"safe-name.v2", "safe-name.v2"},
		{"", "run"},
	}
	for _, c := range cases {
		if got := SanitizeLabel(c[0]); got != c[1] {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestMetricSetJSONDeterminism(t *testing.T) {
	build := func(order []int) MetricSet {
		metrics := []Metric{
			{Name: "frontsim_ipc", Help: "ipc", Labels: []Label{{Key: "workload", Value: "b"}}, Value: 1.5},
			{Name: "frontsim_ipc", Help: "ipc", Labels: []Label{{Key: "workload", Value: "a"}}, Value: 2.5},
			{Name: "frontsim_cycles", Labels: []Label{{Key: "workload", Value: "a"}}, Value: 100},
		}
		var ms MetricSet
		for _, i := range order {
			ms.Add(metrics[i])
		}
		return ms
	}
	var a, b bytes.Buffer
	if err := build([]int{0, 1, 2}).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{2, 0, 1}).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("insertion order leaked into JSON:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.HasSuffix(a.String(), "\n]\n") {
		t.Fatalf("canonical JSON should end with newline-bracket-newline: %q", a.String())
	}
}

func TestMetricSetPrometheusFormat(t *testing.T) {
	var ms MetricSet
	ms.Add(Metric{
		Name: "frontsim_ipc", Help: "Instructions per cycle.",
		Labels: []Label{{Key: "workload", Value: `we"ird\lab` + "\nel"}, {Key: "config", Value: "fdp24"}},
		Value:  1.25,
	})
	ms.Add(Metric{Name: "frontsim_ipc", Labels: []Label{{Key: "workload", Value: "plain"}}, Value: 2})
	ms.Add(Metric{Name: "frontsim_cycles", Value: 12345})

	var buf bytes.Buffer
	if err := ms.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# TYPE frontsim_cycles gauge\n" +
		"frontsim_cycles 12345\n" +
		"# HELP frontsim_ipc Instructions per cycle.\n" +
		"# TYPE frontsim_ipc gauge\n" +
		"frontsim_ipc{config=\"fdp24\",workload=\"we\\\"ird\\\\lab\\nel\"} 1.25\n" +
		"frontsim_ipc{workload=\"plain\"} 2\n"
	if got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromValueSpecials(t *testing.T) {
	if got := promValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN -> %q", got)
	}
	if got := promValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf -> %q", got)
	}
	if got := promValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf -> %q", got)
	}
}

func TestSuiteCollectorRollups(t *testing.T) {
	c := &SuiteCollector{}
	var ms1, ms2, ms3 MetricSet
	ms1.Add(Metric{Name: "frontsim_ipc", Labels: []Label{{Key: "workload", Value: "a"}}, Value: 1})
	ms2.Add(Metric{Name: "frontsim_ipc", Labels: []Label{{Key: "workload", Value: "b"}}, Value: 3})
	ms3.Add(Metric{Name: "frontsim_lone", Value: 7})
	c.Record(ms1)
	c.Record(ms2)
	c.Record(ms3)

	out := c.Export()
	find := func(name, stat string) (float64, bool) {
		for _, m := range out {
			if m.Name != name {
				continue
			}
			for _, l := range m.Labels {
				if l.Key == "stat" && l.Value == stat {
					return m.Value, true
				}
			}
		}
		return 0, false
	}
	if v, ok := find("frontsim_ipc_suite", "mean"); !ok || math.Abs(v-2) > 1e-12 {
		t.Fatalf("ipc suite mean = %v (found=%v), want 2", v, ok)
	}
	if v, ok := find("frontsim_ipc_suite", "min"); !ok || math.Abs(v-1) > 1e-12 {
		t.Fatalf("ipc suite min = %v (found=%v), want 1", v, ok)
	}
	if v, ok := find("frontsim_ipc_suite", "max"); !ok || math.Abs(v-3) > 1e-12 {
		t.Fatalf("ipc suite max = %v (found=%v), want 3", v, ok)
	}
	if _, ok := find("frontsim_lone_suite", "mean"); ok {
		t.Fatal("single-point family should not get a rollup")
	}

	// Export must be byte-stable regardless of record order.
	c2 := &SuiteCollector{}
	c2.Record(ms3)
	c2.Record(ms2)
	c2.Record(ms1)
	var a, b bytes.Buffer
	if err := c.Export().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := c2.Export().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SuiteCollector export depends on record order")
	}
}

func TestTeeFanOut(t *testing.T) {
	a := NewObserver(Options{Stride: 4})
	b := NewObserver(Options{Stride: 6})
	tee := Tee{a, b}
	if got := tee.SampleStride(); got != 4 {
		t.Fatalf("tee stride = %d, want min child stride 4", got)
	}
	tee.Event(Event{Kind: EvRedirect})
	tee.Sample(Sample{Cycle: 10})
	if a.EventCount(EvRedirect) != 1 || b.EventCount(EvRedirect) != 1 {
		t.Fatal("tee did not fan out events")
	}
	if a.TotalSamples() != 1 || b.TotalSamples() != 1 {
		t.Fatal("tee did not fan out samples")
	}
	if got := (Tee{}).SampleStride(); got != 1 {
		t.Fatalf("empty tee stride = %d, want 1", got)
	}
}

func TestEventCountsMetricSet(t *testing.T) {
	o := NewObserver(Options{})
	o.Event(Event{Kind: EvMergeHit})
	o.Event(Event{Kind: EvMergeHit})
	ms := o.EventCountsMetricSet(Label{Key: "workload", Value: "w"})
	if len(ms) != int(numEventKinds) {
		t.Fatalf("got %d metrics, want %d (one per kind)", len(ms), numEventKinds)
	}
	found := false
	for _, m := range ms {
		for _, l := range m.Labels {
			if l.Key == "kind" && l.Value == "merge_hit" {
				found = true
				if math.Abs(m.Value-2) > 1e-12 {
					t.Fatalf("merge_hit count = %v, want 2", m.Value)
				}
			}
		}
	}
	if !found {
		t.Fatal("no merge_hit metric emitted")
	}
}
